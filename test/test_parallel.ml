(* Tests for the multicore layer (Rentcost_parallel + the parallel
   service): the domain pool's scheduling contract, striped-lock
   mutual exclusion, the shared LRU cache under concurrent writers,
   the engine's worker-loop building blocks, the portfolio race's
   differential and determinism guarantees, and a parallel daemon
   session under concurrent clients.

   RENTCOST_TEST_DOMAINS (default 2) sets the domain/worker counts, so
   CI runs the whole battery both sequentially (=1) and with real
   parallelism (=4) — the assertions are identical in both modes;
   that is the point. *)

module P = Numeric.Prng
module S = Rentcost.Solver
module H = Rentcost.Heuristics
module AL = Rentcost.Allocation
module Pl = Rentcost_parallel.Pool
module St = Rentcost_parallel.Striped
module Pf = Rentcost_parallel.Portfolio
module Svc = Rentcost_service
module E = Svc.Engine
module Pr = Svc.Protocol
module J = Svc.Json
module G = Cloudsim.Generator

let test_domains =
  match Sys.getenv_opt "RENTCOST_TEST_DOMAINS" with
  | Some v -> (
    match int_of_string_opt v with Some n when n >= 1 -> n | _ -> 2)
  | None -> 2

let illustrating = Rentcost.Problem.illustrating

(* Small heuristic budgets: the properties below solve whole
   portfolios per case, and the guarantees are seed-for-seed, not
   effort-dependent. *)
let small_params = { H.default_params with H.iterations = 60; H.jumps = 8 }

let cost_of outcome =
  match outcome.S.allocation with
  | Some a -> a.AL.cost
  | None -> Alcotest.fail "expected an allocation"

let alloc_key outcome =
  match outcome.S.allocation with
  | Some a -> Some (Array.to_list a.AL.rho, Array.to_list a.AL.machines, a.AL.cost)
  | None -> None

(* --- Pool: scheduling contract --- *)

let test_pool_sequential_order () =
  (* domains:1 spawns nothing: every task runs on the caller, in
     submission order — the degeneration the portfolio's determinism
     argument leans on. *)
  let ran = ref [] in
  let results =
    Pl.with_pool ~domains:1 (fun pool ->
        Pl.run_list pool
          (List.init 8 (fun i () ->
               ran := i :: !ran;
               i * i)))
  in
  Alcotest.(check (list int)) "results in submission order"
    (List.init 8 (fun i -> i * i))
    results;
  Alcotest.(check (list int)) "executed in submission order"
    (List.init 8 Fun.id) (List.rev !ran)

let test_pool_run_list_order () =
  let results =
    Pl.with_pool ~domains:test_domains (fun pool ->
        Pl.run_list pool (List.init 32 (fun i () -> 3 * i)))
  in
  Alcotest.(check (list int)) "submission-order results under N domains"
    (List.init 32 (fun i -> 3 * i))
    results

let test_pool_no_lost_tasks () =
  let hits = Atomic.make 0 in
  Pl.with_pool ~domains:test_domains (fun pool ->
      ignore
        (Pl.run_list pool
           (List.init 200 (fun _ () -> Atomic.incr hits))));
  Alcotest.(check int) "every submitted task ran exactly once" 200
    (Atomic.get hits)

let test_pool_run_collect_complete () =
  let pairs =
    Pl.with_pool ~domains:test_domains (fun pool ->
        Pl.run_collect pool (List.init 50 (fun i () -> i + 100)))
  in
  let indices = List.sort compare (List.map fst pairs) in
  Alcotest.(check (list int)) "every index appears exactly once"
    (List.init 50 Fun.id) indices;
  List.iter
    (fun (i, r) ->
      Alcotest.(check int) "result travels with its index" (i + 100) r)
    pairs

let test_pool_exception_propagation () =
  (match
     Pl.with_pool ~domains:test_domains (fun pool ->
         Pl.run_list pool
           (List.init 6 (fun i () -> if i = 3 then failwith "boom" else i)))
   with
   | _ -> Alcotest.fail "expected the task's exception"
   | exception Failure msg -> Alcotest.(check string) "task exn" "boom" msg);
  (* Await re-raises too, and the pool survives a failed task. *)
  Pl.with_pool ~domains:test_domains (fun pool ->
      let bad = Pl.async pool (fun () -> raise Exit) in
      let good = Pl.async pool (fun () -> 41 + 1) in
      (match Pl.await pool bad with
       | _ -> Alcotest.fail "expected Exit"
       | exception Exit -> ());
      Alcotest.(check int) "later task unaffected" 42 (Pl.await pool good))

let test_pool_guards () =
  (match Pl.create ~domains:0 () with
   | _ -> Alcotest.fail "domains:0 accepted"
   | exception Invalid_argument _ -> ());
  let pool = Pl.create ~domains:1 () in
  Pl.shutdown pool;
  Pl.shutdown pool;
  (* idempotent *)
  match Pl.async pool (fun () -> ()) with
  | _ -> Alcotest.fail "submit after shutdown accepted"
  | exception Invalid_argument _ -> ()

(* --- Striped: mutual exclusion and key placement --- *)

let spawn_each n f = List.init n (fun i -> Domain.spawn (fun () -> f i))
let join_all = List.iter Domain.join

let test_striped_mutual_exclusion () =
  (* Read-modify-write on one shared cell from several domains: only
     mutual exclusion keeps the final count exact. *)
  let cell = St.create ~stripes:1 (fun _ -> ref 0) in
  let per_domain = 2_000 in
  join_all
    (spawn_each (max 2 test_domains) (fun _ ->
         for _ = 1 to per_domain do
           St.with_key cell ~key:"the-key" (fun r -> incr r)
         done));
  Alcotest.(check int) "no lost increments"
    (max 2 test_domains * per_domain)
    (St.with_key cell ~key:"the-key" (fun r -> !r))

let test_striped_fold_and_placement () =
  let t = St.create ~stripes:4 (fun _ -> ref 0) in
  let keys = List.init 32 (fun i -> "key-" ^ string_of_int i) in
  List.iter (fun k -> St.with_key t ~key:k (fun r -> incr r)) keys;
  (* Equal keys land on the same shard, so a second pass doubles every
     shard's count and the fold sees the exact total. *)
  List.iter (fun k -> St.with_key t ~key:k (fun r -> incr r)) keys;
  Alcotest.(check int) "fold sums all shards" 64
    (St.fold t ~init:0 ~f:(fun acc r -> acc + !r));
  Alcotest.(check int) "stripes as created" 4 (St.stripes t)

(* --- Shared_cache: bounded and correct under concurrent writers --- *)

let test_shared_cache_race () =
  let capacity = 8 in
  let cache = Svc.Shared_cache.create ~capacity ~stripes:4 in
  let digest i = Printf.sprintf "digest-%03d" i
  and encoding i = Printf.sprintf "encoding-%03d" i in
  let entry i =
    { Svc.Cache.target = 10; spec = "h32jump"; canonical_rho = [| i; i |];
      cost = i; optimal = false }
  in
  join_all
    (spawn_each (max 2 test_domains) (fun d ->
         for round = 1 to 20 do
           for i = 0 to 19 do
             if (i + d + round) mod 3 = 0 then
               Svc.Shared_cache.insert cache ~digest:(digest i)
                 ~encoding:(encoding i) (entry i)
             else
               match
                 Svc.Shared_cache.find_exact cache ~digest:(digest i)
                   ~encoding:(encoding i) ~target:10 ~spec:"h32jump"
               with
               | None -> ()
               | Some e ->
                 (* A hit must be the entry stored under that digest —
                    never another fingerprint's answer. *)
                 if e.Svc.Cache.cost <> i then
                   Alcotest.failf "digest %d answered with cost %d" i
                     e.Svc.Cache.cost
           done
         done));
  Alcotest.(check bool) "live entries within global capacity" true
    (Svc.Shared_cache.length cache <= capacity);
  Alcotest.(check int) "capacity reported as created" capacity
    (Svc.Shared_cache.capacity cache)

(* --- Engine: the worker-loop building blocks --- *)

let solve_req ?id ?(reuse = Pr.Monotone) target =
  Pr.Solve
    { id; trace_id = None; tenant = None; source = Pr.Ref "app";
      objective = Rentcost.Objective.min_cost ~target; pricebook = None;
      spec = S.Auto; budget = None; reuse }

let fresh_engine ?(workers = test_domains) ?(queue_capacity = 64) () =
  let e =
    E.create
      ~config:{ E.default_config with E.workers; queue_capacity }
      ()
  in
  ignore (E.register e ~name:"app" illustrating);
  e

let test_engine_drain_next_and_wait () =
  let e = fresh_engine () in
  List.iter
    (fun i -> assert (E.submit e (solve_req ~id:i 60) = []))
    [ 1; 2; 3 ];
  Alcotest.(check bool) "non-empty queue reports work even when stopping"
    true
    (E.wait_for_work e ~stop:(fun () -> true));
  let drained = ref 0 in
  let rec go () =
    match E.drain_next e with
    | [] -> ()
    | rs ->
      List.iter
        (function
          | Pr.Solved _ -> incr drained
          | _ -> Alcotest.fail "expected solved responses")
        rs;
      go ()
  in
  go ();
  Alcotest.(check int) "drain_next answers each queued job once" 3 !drained;
  Alcotest.(check int) "queue empty after draining" 0 (E.queue_length e);
  Alcotest.(check bool) "empty queue + stop returns no work" false
    (E.wait_for_work e ~stop:(fun () -> true))

let test_engine_submit_race () =
  (* Several domains race solves into a tiny queue: the admission
     arithmetic must stay exact — every offer is either queued or
     answered Overloaded, nothing vanishes. *)
  let queue_capacity = 8 in
  let e = fresh_engine ~queue_capacity () in
  let writers = max 2 test_domains in
  let per_writer = 10 in
  let shed = Atomic.make 0 in
  join_all
    (spawn_each writers (fun d ->
         for i = 1 to per_writer do
           match E.submit e (solve_req ~id:((d * 100) + i) 60) with
           | [] -> ()
           | [ Pr.Overloaded _ ] -> Atomic.incr shed
           | _ -> Alcotest.fail "unexpected immediate response"
         done));
  let queued = E.queue_length e in
  Alcotest.(check int) "queued + shed = offered"
    (writers * per_writer)
    (queued + Atomic.get shed);
  Alcotest.(check bool) "queue bound respected" true
    (queued <= queue_capacity);
  Alcotest.(check int) "drain answers exactly the queued jobs" queued
    (List.length (E.drain e))

let test_engine_parallel_workers_drain () =
  (* The daemon's worker loop, inlined: N domains block in
     wait_for_work, drain one job at a time, and stop after the
     backlog is gone. Every admitted solve must be answered exactly
     once. *)
  let e = fresh_engine () in
  let stop = Atomic.make false in
  let rm = Mutex.create () in
  let responses = ref [] in
  let workers =
    spawn_each test_domains (fun _ ->
        let rec loop () =
          if E.wait_for_work e ~stop:(fun () -> Atomic.get stop) then begin
            (match E.drain_next e with
             | [] -> ()
             | rs ->
               Mutex.lock rm;
               responses := rs @ !responses;
               Mutex.unlock rm);
            loop ()
          end
        in
        loop ())
  in
  let jobs = 12 in
  for i = 1 to jobs do
    assert (E.submit e (solve_req ~id:i ~reuse:Pr.No_reuse 60) = [])
  done;
  (* Busy-wait for the workers to drain, then release them. *)
  let rec settle budget =
    if E.queue_length e > 0 && budget > 0 then begin
      Domain.cpu_relax ();
      settle (budget - 1)
    end
  in
  settle 50_000_000;
  while
    Mutex.lock rm;
    let n = List.length !responses in
    Mutex.unlock rm;
    n < jobs
  do
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  E.wake_all e;
  join_all workers;
  let ids =
    List.sort compare
      (List.map
         (function
           | Pr.Solved { id = Some i; _ } -> i
           | _ -> Alcotest.fail "expected solved responses")
         !responses)
  in
  Alcotest.(check (list int)) "every job answered exactly once"
    (List.init jobs (fun i -> i + 1))
    ids

(* --- Portfolio: differential properties --- *)

let gen_params =
  { G.num_graphs = 3; min_tasks = 2; max_tasks = 4; mutation_pct = 0.3 }

let gen_cloud =
  { G.num_types = 3; min_cost = 5; max_cost = 30; min_throughput = 5;
    max_throughput = 20 }

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:20 ~name gen f)

let qgen = QCheck2.Gen.(pair (int_range 0 10_000) (int_range 10 120))

(* For any instance, seed and domain count: the portfolio is feasible
   and never worse than the plain sequential H32Jump run on the same
   seed — rank 0 of the race IS that run. *)
let prop_portfolio_dominates =
  prop "portfolio feasible and <= sequential h32jump" qgen
    (fun (seed, target) ->
      let problem = G.problem ~rng:(P.create seed) gen_params gen_cloud in
      let sequential =
        S.run ~rng:(P.create seed) ~params:small_params
          ~spec:(S.Heuristic H.H32_jump) ~problem
          ~objective:(Rentcost.Objective.min_cost ~target) ()
      in
      List.for_all
        (fun domains ->
          let o =
            Pf.run ~rng:(P.create seed) ~params:small_params ~domains
              ~problem ~target ()
          in
          (match o.S.allocation with
           | Some a -> AL.feasible problem ~target a
           | None -> false)
          && cost_of o <= cost_of sequential)
        [ 1; 2; 4 ])

(* On structured instances a Milp-backed portfolio must agree with the
   independent exact engines. *)
let platform4 =
  Rentcost.Platform.of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ]

let chain types = Rentcost.Task_graph.chain ~ntypes:4 ~types

let blackbox_problem =
  Rentcost.Problem.create platform4 (Array.init 4 (fun q -> chain [| q |]))

let disjoint_problem =
  Rentcost.Problem.create platform4 [| chain [| 0; 1 |]; chain [| 2; 3 |] |]

let test_portfolio_agrees_with_exact () =
  List.iter
    (fun (label, problem, oracle_spec, target) ->
      let exact =
        match
          (S.run ~spec:oracle_spec ~problem
             ~objective:(Rentcost.Objective.min_cost ~target) ())
            .S.allocation
        with
        | Some a -> a.AL.cost
        | None -> Alcotest.fail (label ^ ": oracle found no allocation")
      in
      List.iter
        (fun domains ->
          let o =
            Pf.run ~rng:(P.create 11)
              ~strategies:[ Pf.Heuristic H.H32_jump; Pf.Milp ]
              ~domains ~problem ~target ()
          in
          Alcotest.(check int)
            (Printf.sprintf "%s: portfolio = %s (domains %d)" label
               (S.spec_to_string oracle_spec) domains)
            exact (cost_of o);
          Alcotest.(check bool) (label ^ " proved optimal") true
            (o.S.status = S.Optimal))
        [ 1; test_domains ])
    [ ("illustrating", illustrating, S.Exhaustive, 70);
      ("blackbox", blackbox_problem, S.Exhaustive, 60);
      ("disjoint", disjoint_problem, S.Dp_disjoint, 60) ]

(* --- Portfolio: determinism --- *)

let portfolio_on ?pool ~domains seed =
  Pf.run ~rng:(P.create seed) ~params:small_params ?pool ~domains
    ~problem:illustrating ~target:70 ()

let test_portfolio_determinism_repeats () =
  let reference = alloc_key (portfolio_on ~domains:1 0x5EED) in
  Alcotest.(check bool) "reference run found an allocation" true
    (reference <> None);
  for rep = 1 to 10 do
    List.iter
      (fun domains ->
        if alloc_key (portfolio_on ~domains 0x5EED) <> reference then
          Alcotest.failf "repeat %d with %d domain(s) diverged" rep domains)
      [ 1; 2; 4 ]
  done

let test_portfolio_shuffled_completion_order () =
  (* The executor's test hook shuffles run_collect's completion order;
     the reduction must not care. Ten shuffles, three domain counts,
     one answer. *)
  let reference = alloc_key (portfolio_on ~domains:1 0x5EED) in
  for shuffle_seed = 1 to 10 do
    List.iter
      (fun domains ->
        Pl.with_pool ~shuffle:(P.create shuffle_seed) ~domains (fun pool ->
            if alloc_key (portfolio_on ~pool ~domains 0x5EED) <> reference
            then
              Alcotest.failf "shuffle %d with %d domain(s) diverged"
                shuffle_seed domains))
      [ 1; 2; test_domains ]
  done

let test_reduce_order_and_ties () =
  (* Build outcomes from real allocations of the illustrating problem:
     of_rho gives full control of the split, and cost follows. *)
  let mk rho =
    let a = AL.of_rho illustrating ~rho in
    { S.status = S.Feasible; allocation = Some a;
      throughput = Array.fold_left ( + ) 0 a.AL.rho;
      telemetry =
        { S.engine = S.Heuristic H.H32_jump; wall_time = 0.0;
          evaluations = 0; pivots = 0; nodes = 0; pruned_recipes = 0;
          warm_started = false };
      convergence = [] }
  in
  let cheap = mk [| 70; 0; 0 |]
  and dear = mk [| 0; 70; 0 |] in
  let c_cheap = cost_of cheap and c_dear = cost_of dear in
  Alcotest.(check bool) "test splits priced differently" true
    (c_cheap <> c_dear);
  let lo, hi = if c_cheap < c_dear then (cheap, dear) else (dear, cheap) in
  (* Best cost wins under every permutation. *)
  List.iter
    (fun perm ->
      match Pf.reduce perm with
      | Some (rank, o) ->
        Alcotest.(check int) "winner is the cheaper outcome" (cost_of lo)
          (cost_of o);
        Alcotest.(check int) "winner keeps its rank" 2 rank
      | None -> Alcotest.fail "reduce dropped everything")
    [ [ (1, hi); (2, lo) ]; [ (2, lo); (1, hi) ] ];
  (* Equal costs: the lower rank wins, wherever it sits in the list. *)
  List.iter
    (fun perm ->
      match Pf.reduce perm with
      | Some (rank, _) ->
        Alcotest.(check int) "tie broken by lowest rank" 0 rank
      | None -> Alcotest.fail "reduce dropped everything")
    [ [ (0, lo); (3, lo) ]; [ (3, lo); (0, lo) ] ];
  (* Outcomes without an allocation are skipped, not winners. *)
  let infeasible =
    { S.status = S.Infeasible; allocation = None; throughput = 0;
      telemetry = lo.S.telemetry; convergence = [] }
  in
  (match Pf.reduce [ (0, infeasible); (1, hi) ] with
   | Some (1, _) -> ()
   | _ -> Alcotest.fail "allocation-less outcome must be skipped");
  Alcotest.(check bool) "all-infeasible reduces to None" true
    (Pf.reduce [ (0, infeasible) ] = None)

(* --- the parallel daemon under concurrent clients --- *)

let write_line fd s =
  (* One write per line: under PIPE_BUF, concurrent writers interleave
     at line granularity, never mid-line. *)
  let b = Bytes.of_string (s ^ "\n") in
  let n = Unix.write fd b 0 (Bytes.length b) in
  assert (n = Bytes.length b)

let request_line r = J.to_string (Pr.request_to_json r)

let parse_response line =
  match J.of_string line with
  | Error e -> Alcotest.fail ("torn or bad response json: " ^ e)
  | Ok j -> (
    match Pr.response_of_json j with
    | Error e -> Alcotest.fail ("bad response: " ^ e)
    | Ok r -> r)

(* Run a full daemon session over pipes: [writers] client domains each
   write [per_writer] solve requests concurrently, then the main
   domain appends Stats and Shutdown and serves with [workers]
   domains. Returns the parsed responses in arrival order. *)
let daemon_session ~workers ~writers ~per_writer =
  let req_read, req_write = Unix.pipe () in
  let resp_read, resp_write = Unix.pipe () in
  join_all
    (spawn_each writers (fun d ->
         for i = 1 to per_writer do
           let id = (d * 1000) + i in
           let reuse = if i mod 2 = 0 then Pr.Monotone else Pr.No_reuse in
           write_line req_write
             (request_line (solve_req ~id ~reuse (60 + (i mod 3))))
         done));
  write_line req_write (request_line Pr.Stats);
  write_line req_write (request_line Pr.Shutdown);
  Unix.close req_write;
  let engine = fresh_engine ~workers () in
  let dump = open_out Filename.null in
  let oc = Unix.out_channel_of_descr resp_write in
  Svc.Daemon.serve_channels ~engine ~dump ~workers
    (Unix.in_channel_of_descr req_read)
    oc;
  close_out dump;
  close_out oc;
  let ic = Unix.in_channel_of_descr resp_read in
  let rec read_lines acc =
    match input_line ic with
    | line -> read_lines (parse_response line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let responses = read_lines [] in
  close_in ic;
  responses

let solved_ids responses =
  List.sort compare
    (List.filter_map
       (function Pr.Solved { id; _ } -> id | _ -> None)
       responses)

let expected_ids ~writers ~per_writer =
  List.sort compare
    (List.concat_map
       (fun d -> List.init per_writer (fun i -> (d * 1000) + i + 1))
       (List.init writers Fun.id))

let test_parallel_daemon_stress () =
  let writers = max 2 test_domains and per_writer = 8 in
  let requests_before = Telemetry.value Telemetry.service_requests in
  let responses =
    daemon_session ~workers:(max 4 test_domains) ~writers ~per_writer
  in
  (* Every solve answered exactly once, no torn lines (parse_response
     already failed otherwise), Bye strictly last. *)
  Alcotest.(check (list int)) "every client id answered exactly once"
    (expected_ids ~writers ~per_writer)
    (solved_ids responses);
  (match List.rev responses with
   | Pr.Bye :: rest ->
     Alcotest.(check bool) "exactly one Bye" true
       (not (List.exists (function Pr.Bye -> true | _ -> false) rest))
   | _ -> Alcotest.fail "Bye must be the final response");
  Alcotest.(check bool) "stats answered during the session" true
    (List.exists (function Pr.Stats_reply _ -> true | _ -> false) responses);
  let requests_after = Telemetry.value Telemetry.service_requests in
  Alcotest.(check bool) "request counter saw every solve" true
    (requests_after - requests_before >= writers * per_writer)

let test_parallel_daemon_matches_sequential () =
  (* Same request stream through 1 worker and N workers: completion
     order may differ, the answers may not. *)
  let writers = 2 and per_writer = 6 in
  let answers responses =
    List.sort compare
      (List.filter_map
         (function
           | Pr.Solved { id = Some id; cost; _ } -> Some (id, cost)
           | _ -> None)
         responses)
  in
  let sequential = daemon_session ~workers:1 ~writers ~per_writer in
  let parallel =
    daemon_session ~workers:(max 4 test_domains) ~writers ~per_writer
  in
  Alcotest.(check (list (pair int int)))
    "same (id, cost) answers as the sequential daemon"
    (answers sequential) (answers parallel)

let test_shutdown_drains_backlog () =
  (* All requests (shutdown included) are buffered in the pipe before
     the daemon starts: the reader reaches Shutdown while the queue
     still holds work, and must still answer everything before Bye. *)
  let responses = daemon_session ~workers:2 ~writers:1 ~per_writer:10 in
  Alcotest.(check (list int)) "backlog fully answered"
    (expected_ids ~writers:1 ~per_writer:10)
    (solved_ids responses);
  match List.rev responses with
  | Pr.Bye :: _ -> ()
  | _ -> Alcotest.fail "Bye must come after the drained backlog"

let suite =
  ( "parallel",
    [ Alcotest.test_case "pool domains:1 is sequential" `Quick
        test_pool_sequential_order;
      Alcotest.test_case "pool run_list keeps submission order" `Quick
        test_pool_run_list_order;
      Alcotest.test_case "pool loses no tasks" `Quick test_pool_no_lost_tasks;
      Alcotest.test_case "pool run_collect is complete" `Quick
        test_pool_run_collect_complete;
      Alcotest.test_case "pool propagates task exceptions" `Quick
        test_pool_exception_propagation;
      Alcotest.test_case "pool guards its arguments" `Quick test_pool_guards;
      Alcotest.test_case "striped locks exclude writers" `Quick
        test_striped_mutual_exclusion;
      Alcotest.test_case "striped placement and fold" `Quick
        test_striped_fold_and_placement;
      Alcotest.test_case "shared cache bounded and digest-correct under race"
        `Quick test_shared_cache_race;
      Alcotest.test_case "engine drain_next and wait_for_work" `Quick
        test_engine_drain_next_and_wait;
      Alcotest.test_case "engine admission race stays exact" `Quick
        test_engine_submit_race;
      Alcotest.test_case "engine parallel workers drain the queue" `Quick
        test_engine_parallel_workers_drain;
      prop_portfolio_dominates;
      Alcotest.test_case "portfolio agrees with exact engines" `Quick
        test_portfolio_agrees_with_exact;
      Alcotest.test_case "portfolio deterministic across repeats and domains"
        `Quick test_portfolio_determinism_repeats;
      Alcotest.test_case "portfolio invariant under shuffled completion order"
        `Quick test_portfolio_shuffled_completion_order;
      Alcotest.test_case "reduce: permutation-invariant, rank tie-break"
        `Quick test_reduce_order_and_ties;
      Alcotest.test_case "parallel daemon under concurrent clients" `Quick
        test_parallel_daemon_stress;
      Alcotest.test_case "parallel daemon matches sequential answers" `Quick
        test_parallel_daemon_matches_sequential;
      Alcotest.test_case "shutdown drains the backlog before Bye" `Quick
        test_shutdown_drains_backlog ] )
