(* Tests for the provisioning service (Rentcost_service): the JSON
   codec, fingerprint invariance under renumbering, LRU cache
   behavior, the engine's reuse ladder (exact replay, monotone serve,
   warm start) with allocations always valid for the submitted
   problem, admission shedding, and an end-to-end daemon session over
   a pipe. *)

module P = Rentcost.Problem
module PF = Rentcost.Platform
module TG = Rentcost.Task_graph
module AL = Rentcost.Allocation
module B = Rentcost.Budget
module S = Rentcost.Solver
module Svc = Rentcost_service
module C = Svc.Cache
module E = Svc.Engine
module F = Svc.Fingerprint
module J = Svc.Json
module Pr = Svc.Protocol

(* A shared-types problem (routes to the ILP) with no dominated
   recipe: type-count vectors (1,1,0), (0,1,1), (1,0,1). *)
let recipes types_lists =
  Array.of_list
    (List.map
       (fun ts -> TG.chain ~ntypes:3 ~types:(Array.of_list ts))
       types_lists)

let base =
  P.create (PF.of_list [ (5, 10); (8, 20); (11, 30) ])
    (recipes [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ])

(* [base] with types renamed (0,1,2) -> (1,2,0) and the recipes listed
   in a different order — structurally the same problem. *)
let permuted =
  P.create (PF.of_list [ (11, 30); (5, 10); (8, 20) ])
    (recipes [ [ 2; 0 ]; [ 1; 0 ]; [ 1; 2 ] ])

let solve_req ?id ?trace_id ?tenant ?(source = Pr.Ref "app") ?(spec = S.Auto)
    ?budget ?(reuse = Pr.Monotone) ?pricebook target =
  Pr.Solve
    { id; trace_id; tenant; source;
      objective = Rentcost.Objective.min_cost ~target; pricebook;
      spec; budget; reuse }

type solved = {
  s_status : S.status;
  s_cost : int;
  s_rho : int array;
  s_machines : int array;
  s_served : Pr.served;
}

let solved1 engine req =
  match E.handle engine req with
  | [ Pr.Solved { status; cost; rho; machines; served; _ } ] ->
    { s_status = status; s_cost = cost; s_rho = rho; s_machines = machines;
      s_served = served }
  | [ Pr.Error { message; _ } ] -> Alcotest.fail ("engine error: " ^ message)
  | _ -> Alcotest.fail "expected exactly one solved response"

let engine_with ?config problem =
  let e = E.create ?config () in
  ignore (E.register e ~name:"app" problem);
  e

let check_served what expected got =
  Alcotest.(check string) what
    (Pr.served_to_string expected)
    (Pr.served_to_string got)

(* The response must be a valid allocation of the *submitted* problem:
   machine counts covering the loads, target reached. *)
let check_valid_for problem ~target r =
  let a = AL.make problem ~rho:r.s_rho ~machines:r.s_machines in
  Alcotest.(check bool) "feasible for submitted problem" true
    (AL.feasible problem ~target a);
  Alcotest.(check int) "reported cost matches machines" r.s_cost
    a.AL.cost

(* --- Json --- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [ ("a", J.List [ J.Int 1; J.Float 2.5; J.String "x\n\"\\"; J.Bool true;
                       J.Null ]);
        ("empty", J.Obj []) ]
  in
  match J.of_string (J.to_string v) with
  | Error e -> Alcotest.fail e
  | Ok v' -> Alcotest.(check string) "stable" (J.to_string v) (J.to_string v')

let test_json_unicode_and_errors () =
  (match J.of_string {|"Aé😀"|} with
   | Ok (J.String s) ->
     Alcotest.(check string) "utf8 escapes" "A\xc3\xa9\xf0\x9f\x98\x80" s
   | _ -> Alcotest.fail "unicode escape parse");
  Alcotest.(check bool) "trailing garbage rejected" true
    (Result.is_error (J.of_string "1 2"));
  Alcotest.(check bool) "bad token rejected" true
    (Result.is_error (J.of_string "{\"a\":nul}"));
  Alcotest.(check bool) "integral float coerces" true
    (J.to_int (J.Float 3.0) = Some 3);
  Alcotest.(check bool) "fractional float does not" true
    (J.to_int (J.Float 3.5) = None)

(* --- Fingerprint --- *)

let test_fingerprint_permutation_invariant () =
  let fa = F.of_problem base and fb = F.of_problem permuted in
  Alcotest.(check bool) "equal encodings" true (F.equal fa fb);
  Alcotest.(check string) "equal digests" (F.digest fa) (F.digest fb)

let test_fingerprint_distinguishes () =
  let other =
    P.create (PF.of_list [ (5, 10); (8, 20); (12, 30) ])
      (recipes [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ])
  in
  Alcotest.(check bool) "different cost, different fingerprint" false
    (F.equal (F.of_problem base) (F.of_problem other))

(* --- Cache --- *)

let entry ?(spec = "ilp") ?(optimal = true) target =
  { C.target; spec; canonical_rho = [| target; 0; 0 |]; cost = target;
    optimal }

let test_cache_lru_eviction () =
  let c = C.create ~capacity:2 in
  C.insert c ~digest:"a" ~encoding:"ea" (entry 10);
  C.insert c ~digest:"b" ~encoding:"eb" (entry 20);
  (* Touch "a" so "b" becomes the LRU entry. *)
  Alcotest.(check bool) "a hit" true
    (C.find_exact c ~digest:"a" ~encoding:"ea" ~target:10 ~spec:"ilp" <> None);
  C.insert c ~digest:"c" ~encoding:"ec" (entry 30);
  Alcotest.(check bool) "a survives" true (C.mem c ~digest:"a" ~target:10 ~spec:"ilp");
  Alcotest.(check bool) "b evicted" false (C.mem c ~digest:"b" ~target:20 ~spec:"ilp");
  Alcotest.(check bool) "c present" true (C.mem c ~digest:"c" ~target:30 ~spec:"ilp");
  Alcotest.(check int) "one eviction" 1 (C.evictions c);
  Alcotest.(check int) "at capacity" 2 (C.length c)

let test_cache_lookups () =
  let c = C.create ~capacity:8 in
  let digest = "d" and encoding = "e" in
  C.insert c ~digest ~encoding (entry 50);
  C.insert c ~digest ~encoding (entry 100);
  C.insert c ~digest ~encoding (entry ~optimal:false 70);
  (* A digest collision (same digest, different encoding) must miss. *)
  Alcotest.(check bool) "collision misses" true
    (C.find_exact c ~digest ~encoding:"other" ~target:50 ~spec:"ilp" = None);
  (* Monotone: smallest optimal target >= request; 70 is not optimal. *)
  (match C.find_monotone c ~digest ~encoding ~target:60 with
   | Some e -> Alcotest.(check int) "monotone 60 -> 100" 100 e.C.target
   | None -> Alcotest.fail "monotone 60 missed");
  (match C.find_monotone c ~digest ~encoding ~target:40 with
   | Some e -> Alcotest.(check int) "monotone 40 -> 50" 50 e.C.target
   | None -> Alcotest.fail "monotone 40 missed");
  (* Nearest usable: any entry at or above the target. *)
  (match C.find_nearest c ~digest ~encoding ~target:60 with
   | Some e -> Alcotest.(check int) "nearest 60 -> 70" 70 e.C.target
   | None -> Alcotest.fail "nearest 60 missed");
  Alcotest.(check bool) "nearest never below target" true
    (C.find_nearest c ~digest ~encoding ~target:101 = None);
  (* An optimal entry answers an exact request from another engine. *)
  (match C.find_exact c ~digest ~encoding ~target:100 ~spec:"h1" with
   | Some e -> Alcotest.(check bool) "cross-spec needs optimal" true e.C.optimal
   | None -> Alcotest.fail "cross-spec exact missed");
  Alcotest.(check bool) "non-optimal other-spec entry does not" true
    (C.find_exact c ~digest ~encoding ~target:70 ~spec:"h1" = None)

(* --- Engine: the reuse ladder --- *)

let test_exact_replay () =
  let e = engine_with base in
  let r1 = solved1 e (solve_req ~id:1 120) in
  let r2 = solved1 e (solve_req ~id:2 120) in
  check_served "first cold" Pr.Cold r1.s_served;
  check_served "second from cache" Pr.Exact_hit r2.s_served;
  Alcotest.(check int) "same cost" r1.s_cost r2.s_cost;
  Alcotest.(check (array int)) "identical rho" r1.s_rho r2.s_rho;
  Alcotest.(check (array int)) "identical machines" r1.s_machines r2.s_machines;
  Alcotest.(check string) "still optimal"
    (S.status_to_string r1.s_status) (S.status_to_string r2.s_status);
  check_valid_for base ~target:120 r2

let test_monotone_reuse_feasible () =
  let e = engine_with base in
  let high = solved1 e (solve_req 120) in
  let low = solved1 e (solve_req 90) in
  check_served "low target served monotone" Pr.Monotone_hit low.s_served;
  Alcotest.(check string) "feasible, not proved optimal" "feasible"
    (S.status_to_string low.s_status);
  Alcotest.(check int) "replays the cached optimum's cost" high.s_cost
    low.s_cost;
  check_valid_for base ~target:90 low;
  (* The incumbent is an upper bound: a true solve can only be <=. *)
  let cold = solved1 (engine_with base) (solve_req ~reuse:Pr.No_reuse 90) in
  Alcotest.(check bool) "incumbent upper-bounds the optimum" true
    (cold.s_cost <= low.s_cost)

let test_warm_start_reuse () =
  let e = engine_with base in
  ignore (solved1 e (solve_req 100));
  let warm = solved1 e (solve_req ~reuse:Pr.Warm 80) in
  check_served "seeded from nearest cached split" Pr.Warm_started warm.s_served;
  Alcotest.(check string) "exact engine still proves optimality" "optimal"
    (S.status_to_string warm.s_status);
  let cold = solved1 (engine_with base) (solve_req ~reuse:Pr.No_reuse 80) in
  Alcotest.(check int) "warm start does not change the optimum" cold.s_cost
    warm.s_cost;
  check_valid_for base ~target:80 warm

let test_equivalent_inline_shares_cache () =
  let e = E.create () in
  let r1 = solved1 e (solve_req ~source:(Pr.Inline base) 100) in
  let r2 = solved1 e (solve_req ~source:(Pr.Inline permuted) 100) in
  check_served "permuted problem hits the cache" Pr.Exact_hit r2.s_served;
  Alcotest.(check int) "same optimal cost" r1.s_cost r2.s_cost;
  (* The cached split is translated into the submitted numbering. *)
  check_valid_for permuted ~target:100 r2

let test_reuse_none_never_hits () =
  let e = engine_with base in
  ignore (solved1 e (solve_req 70));
  let r = solved1 e (solve_req ~reuse:Pr.No_reuse 70) in
  check_served "reuse none solves cold" Pr.Cold r.s_served

let test_unknown_ref_errors () =
  let e = E.create () in
  match E.handle e (solve_req ~source:(Pr.Ref "nope") 50) with
  | [ Pr.Error { message; _ } ] ->
    Alcotest.(check bool) "mentions the ref" true
      (String.length message > 0)
  | _ -> Alcotest.fail "expected an error response"

(* --- admission control --- *)

let test_admission_door_shed () =
  let e =
    engine_with ~config:{ E.default_config with E.queue_capacity = 2 } base
  in
  Alcotest.(check bool) "first admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:1 50) = []);
  Alcotest.(check bool) "second admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:2 60) = []);
  (match E.submit ~now:0.0 e (solve_req ~id:3 70) with
   | [ Pr.Overloaded { id = Some 3; retry_after_ms = Some ms; _ } ] ->
     Alcotest.(check bool) "retry hint is positive" true (ms > 0)
   | _ -> Alcotest.fail "expected the third request shed at the door");
  Alcotest.(check int) "two queued" 2 (E.queue_length e);
  let responses = E.drain ~now:0.0 e in
  Alcotest.(check int) "both drained" 2 (List.length responses);
  Alcotest.(check bool) "drained in arrival order" true
    (match responses with
     | [ Pr.Solved { id = Some 1; _ }; Pr.Solved { id = Some 2; _ } ] -> true
     | _ -> false)

let test_admission_deadline_shed () =
  let e = engine_with base in
  Alcotest.(check bool) "admitted" true
    (E.submit ~now:0.0 e
       (solve_req ~id:9 ~budget:(B.deadline 0.5) 50)
     = []);
  match E.drain ~now:10.0 e with
  | [ Pr.Overloaded { id = Some 9; _ } ] -> ()
  | _ -> Alcotest.fail "expected the expired request shed at dispatch"

(* A request whose deadline has nearly — but not — expired by the time
   it is drained must still be answered: the engine derives the solve
   budget from the remaining slack, so the solver degrades to its
   heuristic incumbent instead of missing the deadline. *)
let test_deadline_slack_degrades () =
  let e = engine_with base in
  Alcotest.(check bool) "admitted" true
    (E.submit ~now:0.0 e
       (solve_req ~id:4 ~reuse:Pr.No_reuse ~budget:(B.deadline 10.0) 110)
     = []);
  match E.drain ~now:9.999999 e with
  | [ Pr.Solved { id = Some 4; status; cost; rho; machines; _ } ] ->
    Alcotest.(check string) "budget exhausted, not missed" "budget-exhausted"
      (S.status_to_string status);
    let a = AL.make base ~rho ~machines in
    Alcotest.(check bool) "incumbent still feasible" true
      (AL.feasible base ~target:110 a);
    let cold = solved1 (engine_with base) (solve_req ~reuse:Pr.No_reuse 110) in
    Alcotest.(check bool) "incumbent upper-bounds the optimum" true
      (cold.s_cost <= cost)
  | [ Pr.Overloaded _ ] ->
    Alcotest.fail "request with remaining slack was shed as overloaded"
  | _ -> Alcotest.fail "expected one solved response"

(* --- autoscale sessions: protocol codec and the engine ops --- *)

let track_req ?(session = "fleet") ?(source = Pr.Ref "app")
    ?(ticks_per_hour = 4) ?(deadband = 0.25) ?(headroom = 0.) () =
  Pr.Track
    { session; source; ticks_per_hour; deadband; headroom; spec = S.Auto }

let test_track_protocol_roundtrip () =
  let roundtrip r =
    match Pr.request_of_json (Pr.request_to_json r) with
    | Ok r' -> r'
    | Error e -> Alcotest.fail ("request did not survive the codec: " ^ e)
  in
  (match roundtrip (track_req ()) with
   | Pr.Track { session = "fleet"; source = Pr.Ref "app"; ticks_per_hour = 4;
                deadband = 0.25; headroom = 0.; spec = S.Auto } -> ()
   | _ -> Alcotest.fail "track request mangled");
  (match roundtrip (Pr.Tick { id = Some 7; session = "fleet"; demand = 55 }) with
   | Pr.Tick { id = Some 7; session = "fleet"; demand = 55 } -> ()
   | _ -> Alcotest.fail "tick request mangled");
  (match roundtrip (Pr.Untrack { session = "fleet" }) with
   | Pr.Untrack { session = "fleet" } -> ()
   | _ -> Alcotest.fail "untrack request mangled");
  (* Defaults mirror Controller.default_config when the knobs are
     absent. *)
  match
    Pr.request_of_json
      (J.Obj
         [ ("op", J.String "track");
           ("problem", J.String (Rentcost.Problem_format.to_string base)) ])
  with
  | Ok (Pr.Track { session = "default"; source = Pr.Inline _;
                   ticks_per_hour; deadband; headroom; _ }) ->
    let d = Rentcost_autoscale.Controller.default_config in
    Alcotest.(check int) "default ticks_per_hour"
      d.Rentcost_autoscale.Controller.ticks_per_hour ticks_per_hour;
    Alcotest.(check (float 0.)) "default deadband"
      d.Rentcost_autoscale.Controller.deadband deadband;
    Alcotest.(check (float 0.)) "default headroom"
      d.Rentcost_autoscale.Controller.headroom headroom
  | Ok _ -> Alcotest.fail "track defaults mangled"
  | Error e -> Alcotest.fail ("track with defaults rejected: " ^ e)

let test_track_response_roundtrip () =
  let roundtrip r =
    match Pr.response_of_json (Pr.response_to_json r) with
    | Ok r' ->
      Alcotest.(check string) "stable encoding"
        (J.to_string (Pr.response_to_json r))
        (J.to_string (Pr.response_to_json r'));
      r'
    | Error e -> Alcotest.fail ("response did not survive the codec: " ^ e)
  in
  (match roundtrip (Pr.Tracking { session = "fleet"; fingerprint = "abc123" })
   with
   | Pr.Tracking { session = "fleet"; fingerprint = "abc123" } -> ()
   | _ -> Alcotest.fail "tracking response mangled");
  let plan =
    { Rentcost_autoscale.Controller.tick = 3; demand = 55; target = 55;
      action = Rentcost_autoscale.Controller.Reconfigure; rent = [| 1; 0 |];
      renew = [| 0; 2 |]; release = [| 0; 1 |]; machines = [| 4; 2 |];
      rho = [| 40; 15; 0 |]; charged = 34; violation = true }
  in
  (match
     roundtrip
       (Pr.Plan { id = Some 7; session = "fleet"; plan; total_charged = 120 })
   with
   | Pr.Plan { id = Some 7; session = "fleet"; plan = p; total_charged = 120 }
     ->
     Alcotest.(check int) "tick" 3 p.Rentcost_autoscale.Controller.tick;
     Alcotest.(check (array int)) "rent" [| 1; 0 |]
       p.Rentcost_autoscale.Controller.rent;
     Alcotest.(check (array int)) "rho" [| 40; 15; 0 |]
       p.Rentcost_autoscale.Controller.rho;
     Alcotest.(check bool) "violation" true
       p.Rentcost_autoscale.Controller.violation
   | _ -> Alcotest.fail "plan response mangled");
  match
    roundtrip
      (Pr.Untracked
         { session = "fleet"; ticks = 10; replans = 3; holds = 7;
           violations = 2; total_charged = 123 })
  with
  | Pr.Untracked { session = "fleet"; ticks = 10; replans = 3; holds = 7;
                   violations = 2; total_charged = 123 } -> ()
  | _ -> Alcotest.fail "untracked response mangled"

let test_track_session_end_to_end () =
  let e = engine_with base in
  (match E.handle e (track_req ()) with
   | [ Pr.Tracking { session = "fleet"; fingerprint } ] ->
     Alcotest.(check bool) "fingerprint non-empty" true
       (String.length fingerprint > 0)
   | _ -> Alcotest.fail "expected a tracking response");
  (* First observation: empty fleet, so the plan must rent. *)
  (match E.handle e (Pr.Tick { id = Some 1; session = "fleet"; demand = 60 })
   with
   | [ Pr.Plan { id = Some 1; session = "fleet"; plan; total_charged } ] ->
     Alcotest.(check string) "first tick reconfigures" "reconfigure"
       (Rentcost_autoscale.Controller.action_to_string
          plan.Rentcost_autoscale.Controller.action);
     Alcotest.(check bool) "first tick rents machines" true
       (Array.fold_left ( + ) 0 plan.Rentcost_autoscale.Controller.rent > 0);
     Alcotest.(check int) "bill matches the plan"
       plan.Rentcost_autoscale.Controller.charged total_charged
   | _ -> Alcotest.fail "expected a plan response");
  (* Same demand again: inside the deadband, the controller holds. *)
  (match E.handle e (Pr.Tick { id = Some 2; session = "fleet"; demand = 60 })
   with
   | [ Pr.Plan { plan; _ } ] ->
     Alcotest.(check string) "repeat demand holds" "hold"
       (Rentcost_autoscale.Controller.action_to_string
          plan.Rentcost_autoscale.Controller.action)
   | _ -> Alcotest.fail "expected a plan response");
  (match E.handle e Pr.Stats with
   | [ Pr.Stats_reply stats ] ->
     Alcotest.(check (option int)) "stats count the session" (Some 1)
       (J.get_int "tracked" (J.Obj stats))
   | _ -> Alcotest.fail "expected a stats reply");
  (match E.handle e (Pr.Untrack { session = "fleet" }) with
   | [ Pr.Untracked { session = "fleet"; ticks = 2; replans = 1; holds = 1;
                      violations = 1; total_charged } ] ->
     Alcotest.(check bool) "session was billed" true (total_charged > 0)
   | _ -> Alcotest.fail "expected an untracked summary");
  match E.handle e (Pr.Tick { id = Some 3; session = "fleet"; demand = 10 }) with
  | [ Pr.Error { id = Some 3; message; _ } ] ->
    Alcotest.(check bool) "names the missing session" true
      (String.length message > 0)
  | _ -> Alcotest.fail "tick after untrack must error"

let test_track_unknown_ref_errors () =
  let e = E.create () in
  match E.handle e (track_req ~source:(Pr.Ref "nope") ()) with
  | [ Pr.Error { message; _ } ] ->
    Alcotest.(check bool) "mentions track" true
      (String.length message > 0)
  | _ -> Alcotest.fail "expected an error response"

(* --- end to end: a daemon session over a pipe --- *)

let write_all fd s =
  let b = Bytes.of_string s in
  let n = ref 0 in
  while !n < Bytes.length b do
    n := !n + Unix.write fd b !n (Bytes.length b - !n)
  done

let test_daemon_over_pipe () =
  let req_read, req_write = Unix.pipe () in
  let resp_read, resp_write = Unix.pipe () in
  let requests =
    [ Pr.Register { name = "app"; problem = base };
      solve_req ~id:1 110; solve_req ~id:2 110; Pr.Stats; Pr.Shutdown ]
  in
  let payload =
    String.concat ""
      (List.map
         (fun r -> J.to_string (Pr.request_to_json r) ^ "\n")
         requests)
  in
  write_all req_write payload;
  Unix.close req_write;
  let dump_path = Filename.temp_file "rentcost_service" ".dump" in
  let dump = open_out dump_path in
  let oc = Unix.out_channel_of_descr resp_write in
  Svc.Daemon.serve_channels ~dump (Unix.in_channel_of_descr req_read) oc;
  close_out dump;
  close_out oc;
  let ic = Unix.in_channel_of_descr resp_read in
  let rec read_lines acc =
    match input_line ic with
    | line -> read_lines (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read_lines [] in
  close_in ic;
  let responses =
    List.map
      (fun line ->
        match J.of_string line with
        | Error e -> Alcotest.fail ("bad response json: " ^ e)
        | Ok j -> (
          match Pr.response_of_json j with
          | Error e -> Alcotest.fail ("bad response: " ^ e)
          | Ok r -> r))
      lines
  in
  (match responses with
   | [ Pr.Registered { name = "app"; _ };
       Pr.Solved { id = Some 1; served = s1; cost = c1; rho = r1; _ };
       Pr.Solved { id = Some 2; served = s2; cost = c2; rho = r2; _ };
       Pr.Stats_reply stats;
       Pr.Bye ] ->
     check_served "first cold" Pr.Cold s1;
     check_served "replay served from cache" Pr.Exact_hit s2;
     Alcotest.(check int) "same cost over the wire" c1 c2;
     Alcotest.(check (array int)) "same split over the wire" r1 r2;
     let hits =
       Option.bind
         (J.member "counters" (J.Obj stats))
         (J.get_int Telemetry.service_cache_hits)
     in
     Alcotest.(check bool) "stats report a cache hit" true
       (match hits with Some h -> h >= 1 | None -> false)
   | _ -> Alcotest.fail "unexpected response sequence");
  let dump_ic = open_in dump_path in
  let dump_line = input_line dump_ic in
  close_in dump_ic;
  Sys.remove dump_path;
  Alcotest.(check bool) "shutdown dumped stats" true
    (match J.of_string dump_line with
     | Ok j -> J.member "stats" j <> None
     | Error _ -> false)

(* --- the metrics exposition --- *)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_metrics_reply () =
  let e = engine_with base in
  (match E.handle e (solve_req ~id:1 90) with
   | [ Pr.Solved _ ] -> ()
   | _ -> Alcotest.fail "expected one solved response");
  match E.handle e Pr.Metrics with
  | [ Pr.Metrics_reply { metrics; text } ] ->
    (* The reply survives the wire codec. *)
    (match
       Pr.response_of_json
         (Pr.response_to_json (Pr.Metrics_reply { metrics; text }))
     with
     | Ok (Pr.Metrics_reply _) -> ()
     | _ -> Alcotest.fail "metrics reply does not survive the codec");
    let counters = J.member "counters" metrics in
    Alcotest.(check bool) "requests counted" true
      (match Option.bind counters (J.get_int Telemetry.service_requests) with
       | Some n -> n >= 1
       | None -> false);
    (match J.member "histograms" metrics with
     | Some (J.List hs) ->
       let names = List.filter_map (J.get_string "name") hs in
       Alcotest.(check bool) "latency histogram exported" true
         (List.mem Telemetry.service_latency_seconds names);
       Alcotest.(check bool) "queue-wait histogram exported" true
         (List.mem Telemetry.service_queue_wait_seconds names)
     | _ -> Alcotest.fail "metrics carry no histograms");
    (match J.member "spans" metrics with
     | Some (J.List spans) ->
       let names = List.filter_map (J.get_string "name") spans in
       Alcotest.(check bool) "request span retained" true
         (List.mem "service.request" names)
     | _ -> Alcotest.fail "metrics carry no spans");
    (match J.member "service" metrics with
     | Some svc ->
       Alcotest.(check bool) "per-op counts included" true
         (J.member "ops" svc <> None);
       Alcotest.(check bool) "uptime included" true
         (J.member "uptime" svc <> None)
     | None -> Alcotest.fail "metrics carry no service stats");
    (match J.member "numeric" metrics with
     | Some numeric ->
       Alcotest.(check (option string)) "fast kernel named"
         (Some Numeric.Fix64.name)
         (J.get_string "fast_kernel" numeric);
       Alcotest.(check (option string)) "exact kernel named"
         (Some Numeric.Kernel.Exact.name)
         (J.get_string "exact_kernel" numeric);
       (* The solve above ran the Fix64-first driver, so the fast-path
          counter registers and the fallback count is exposed. *)
       Alcotest.(check bool) "fast solves counted" true
         (match J.get_int "fast_solves" numeric with
          | Some n -> n >= 1
          | None -> false);
       Alcotest.(check bool) "fallbacks exposed" true
         (J.get_int "fallbacks" numeric <> None)
     | None -> Alcotest.fail "metrics carry no numeric section");
    Alcotest.(check bool) "text exposition covers service counters" true
      (contains ~sub:"service_requests_total" text);
    Alcotest.(check bool) "text exposition covers histogram buckets" true
      (contains ~sub:"service_latency_seconds_bucket" text)
  | _ -> Alcotest.fail "expected a metrics reply"

(* --- trace ids and the audit journal --- *)

type traced = { t_trace_id : string option; t_cost : int }

let solve_traced ?trace_id ?tenant ?(id = 1) e target =
  match
    E.handle e
      (Pr.Solve
         { id = Some id; trace_id; tenant; source = Pr.Ref "app";
           objective = Rentcost.Objective.min_cost ~target; pricebook = None;
           spec = S.Auto; budget = None; reuse = Pr.Monotone })
  with
  | [ Pr.Solved { trace_id; cost; _ } ] -> { t_trace_id = trace_id; t_cost = cost }
  | [ Pr.Error { message; _ } ] -> Alcotest.fail ("engine error: " ^ message)
  | _ -> Alcotest.fail "expected exactly one solved response"

let test_trace_id_roundtrip () =
  let e = engine_with base in
  (* A client-supplied id is echoed verbatim... *)
  let r1 = solve_traced ~trace_id:"req-client-7" e 110 in
  Alcotest.(check (option string)) "client id echoed" (Some "req-client-7")
    r1.t_trace_id;
  (* ...and an omitted one is engine-assigned, unique per request. *)
  let r2 = solve_traced ~id:2 e 120 in
  let r3 = solve_traced ~id:3 e 120 in
  let assigned r =
    match r.t_trace_id with
    | Some t when String.length t > 4 && String.sub t 0 4 = "req-" -> t
    | Some t -> Alcotest.failf "assigned id %S lacks the req- prefix" t
    | None -> Alcotest.fail "no trace id assigned"
  in
  Alcotest.(check bool) "assigned ids distinct" true
    (assigned r2 <> assigned r3);
  (* The matching audit records carry the same ids, newest last. *)
  match E.handle e (Pr.Audit { last = Some 3 }) with
  | [ Pr.Audit_reply records ] ->
    Alcotest.(check (list string)) "audit records carry the ids"
      [ "req-client-7"; assigned r2; assigned r3 ]
      (List.map (fun (r : Svc.Audit.record) -> r.Svc.Audit.trace_id) records)
  | _ -> Alcotest.fail "expected an audit reply"

let test_trace_id_on_spans () =
  Telemetry.Span.clear ();
  let e = engine_with base in
  ignore (solve_traced ~trace_id:"req-spans" e 110);
  let spans = Telemetry.Span.recent () in
  let stamped =
    List.filter
      (fun s ->
        List.assoc_opt "trace_id" s.Telemetry.Span.attrs = Some "req-spans")
      spans
  in
  (* Every span of the request is stamped, from the service.request
     root down to the engine's own spans. *)
  let names = List.map (fun s -> s.Telemetry.Span.name) stamped in
  Alcotest.(check bool) "request root stamped" true
    (List.mem "service.request" names);
  Alcotest.(check bool) "engine solve spans stamped" true
    (List.exists (fun n -> n = "service.solve" || n = "solver.run") names
    || List.length stamped > 1)

let test_audit_journal () =
  let e = engine_with base in
  let r1 = solve_traced ~tenant:"acme" e 110 in
  let _r2 = solve_traced ~id:2 ~tenant:"acme" e 110 in
  (match E.handle e (Pr.Audit { last = None }) with
  | [ Pr.Audit_reply [ cold; hit ] ] ->
    Alcotest.(check string) "tenant recorded" "acme" cold.Svc.Audit.tenant;
    Alcotest.(check bool) "fingerprint digest recorded" true
      (String.length cold.Svc.Audit.fingerprint > 0);
    Alcotest.(check string) "fingerprints agree" cold.Svc.Audit.fingerprint
      hit.Svc.Audit.fingerprint;
    Alcotest.(check string) "cold rung" "cold" cold.Svc.Audit.served;
    Alcotest.(check string) "exact rung" "exact-hit" hit.Svc.Audit.served;
    Alcotest.(check int) "cost recorded" r1.t_cost cold.Svc.Audit.cost;
    Alcotest.(check bool) "queue wait sane" true
      (cold.Svc.Audit.queue_wait >= 0.0);
    Alcotest.(check bool) "wall time measured" true
      (cold.Svc.Audit.wall >= 0.0);
    (* The cold solve ran an engine, so its record folds a convergence
       timeline; the cache hit ran nothing. *)
    (match cold.Svc.Audit.convergence with
    | None -> Alcotest.fail "cold solve has no convergence summary"
    | Some s ->
      Alcotest.(check bool) "timeline non-empty" true (s.Svc.Audit.events > 0);
      (match (s.Svc.Audit.last_incumbent, s.Svc.Audit.final_gap) with
      | Some inc, Some gap ->
        Alcotest.(check (float 1e-9)) "final incumbent is the answer"
          (float_of_int r1.t_cost) inc;
        Alcotest.(check (float 1e-9)) "optimality proved: zero gap" 0.0 gap
      | _ -> Alcotest.fail "summary lacks incumbent or gap"));
    Alcotest.(check bool) "hit records no timeline" true
      (hit.Svc.Audit.convergence = None);
    (* Records survive the wire codec. *)
    (match
       Pr.response_of_json (Pr.response_to_json (Pr.Audit_reply [ cold; hit ]))
     with
    | Ok (Pr.Audit_reply [ c'; h' ]) ->
      Alcotest.(check string) "codec keeps trace id" cold.Svc.Audit.trace_id
        c'.Svc.Audit.trace_id;
      Alcotest.(check bool) "codec keeps the summary" true
        (c'.Svc.Audit.convergence = cold.Svc.Audit.convergence);
      Alcotest.(check bool) "codec keeps the absence" true
        (h'.Svc.Audit.convergence = None)
    | _ -> Alcotest.fail "audit reply does not survive the codec")
  | _ -> Alcotest.fail "expected two audit records");
  (* Failed solves are completed requests too: they land in the
     journal with status "error". *)
  (match E.handle e (solve_req ~id:9 ~source:(Pr.Ref "nope") 50) with
  | [ Pr.Error _ ] -> ()
  | _ -> Alcotest.fail "expected an error for the unknown ref");
  match E.handle e (Pr.Audit { last = Some 1 }) with
  | [ Pr.Audit_reply [ r ] ] ->
    Alcotest.(check string) "error status recorded" "error" r.Svc.Audit.status;
    Alcotest.(check string) "no rung on an error" "none" r.Svc.Audit.served
  | _ -> Alcotest.fail "expected the error record"

let test_audit_kill_switch () =
  let e = engine_with base in
  ignore (solve_traced e 110);
  Alcotest.(check int) "one record while enabled" 1
    (Svc.Audit.recorded (E.audit e));
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled true)
    (fun () ->
      Telemetry.set_enabled false;
      let r = solve_traced ~id:2 ~trace_id:"req-dark" e 120 in
      (* The solve still answers — with its trace id — but the frozen
         journal records nothing. *)
      Alcotest.(check (option string)) "response still traced"
        (Some "req-dark") r.t_trace_id;
      Alcotest.(check int) "journal frozen" 1 (Svc.Audit.recorded (E.audit e)))

let test_audit_ring_and_file () =
  let ring = Svc.Audit.create ~capacity:2 () in
  let path = Filename.temp_file "rentcost_audit" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      Svc.Audit.close ring;
      try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Svc.Audit.open_file ring path;
      let mk trace_id =
        { Svc.Audit.seq = 0; at = 1.0; trace_id; id = None; tenant = "t";
          fingerprint = "fp"; objective = "min-cost"; scalar = 10;
          served = "cold"; engine = "ilp"; status = "optimal"; cost = 5;
          throughput = 10; queue_wait = 0.0; wall = 0.1; evaluations = 1;
          pivots = 2; nodes = 3; convergence = None }
      in
      List.iter (fun t -> Svc.Audit.record ring (mk t)) [ "a"; "b"; "c" ];
      (* The ring holds the newest two, oldest first; the file keeps
         all three. *)
      Alcotest.(check (list string)) "ring keeps the newest"
        [ "b"; "c" ]
        (List.map
           (fun (r : Svc.Audit.record) -> r.Svc.Audit.trace_id)
           (Svc.Audit.recent ring));
      Alcotest.(check int) "sequence numbers assigned" 3
        (Svc.Audit.recorded ring);
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      Alcotest.(check (list string)) "file keeps every record"
        [ "a"; "b"; "c" ]
        (List.rev_map
           (fun line ->
             match Result.bind (J.of_string line) Svc.Audit.record_of_json with
             | Ok r -> r.Svc.Audit.trace_id
             | Error e -> Alcotest.fail ("audit line: " ^ e))
           !lines))

(* --- serving under concurrency: single-flight, batching, shed policies --- *)

let test_domains =
  match Sys.getenv_opt "RENTCOST_TEST_DOMAINS" with
  | Some s -> (
    match int_of_string_opt s with Some n when n > 0 -> n | _ -> 2)
  | None -> 2

let count_solve_spans () =
  List.length
    (List.filter
       (fun s -> s.Telemetry.Span.name = "service.solve")
       (Telemetry.Span.recent ()))

let coalesced_total () =
  Telemetry.read (Telemetry.counter Telemetry.service_coalesced)

let response_trace_id = function
  | Pr.Solved { trace_id; _ } | Pr.Error { trace_id; _ }
  | Pr.Overloaded { trace_id; _ } ->
    Option.value ~default:"" trace_id
  | _ -> ""

let distinct_trace_ids responses =
  List.length
    (List.sort_uniq compare (List.map response_trace_id responses))

(* 32 identical solves queued, drained by one thread: the first is the
   cold leader, the 7 batch mates ride its flight, and the completing
   flight adopts the 24 still queued — 1 cold solve, 31 coalesced,
   deterministically, whatever the batch size. *)
let test_herd_single_thread () =
  Telemetry.Span.clear ();
  let e = engine_with base in
  let before = coalesced_total () in
  for i = 1 to 32 do
    Alcotest.(check bool) "admitted" true
      (E.submit ~now:0.0 e (solve_req ~id:i 110) = [])
  done;
  let responses = E.drain ~now:0.0 e in
  Alcotest.(check int) "herd fully answered" 32 (List.length responses);
  let cold, rest =
    List.partition
      (function Pr.Solved { served = Pr.Cold; _ } -> true | _ -> false)
      responses
  in
  Alcotest.(check int) "exactly one cold solve" 1 (List.length cold);
  List.iter
    (function
      | Pr.Solved { served = Pr.Coalesced; _ } -> ()
      | _ -> Alcotest.fail "every follower served coalesced")
    rest;
  Alcotest.(check int) "coalesced counter accounts the followers" 31
    (coalesced_total () - before);
  Alcotest.(check int) "exactly one service.solve span" 1
    (count_solve_spans ());
  Alcotest.(check int) "every reply carries its own trace id" 32
    (distinct_trace_ids responses);
  (match cold with
   | [ Pr.Solved { cost; rho; _ } ] ->
     List.iter
       (function
         | Pr.Solved { cost = c; rho = r; _ } ->
           Alcotest.(check int) "follower cost identical" cost c;
           Alcotest.(check (array int)) "follower split identical" rho r
         | _ -> ())
       rest
   | _ -> assert false);
  (* The audit journal accounts all 32, one record each. *)
  match E.handle ~now:0.0 e (Pr.Audit { last = None }) with
  | [ Pr.Audit_reply records ] ->
    Alcotest.(check int) "one audit record per request" 32
      (List.length records);
    Alcotest.(check int) "31 records tagged coalesced" 31
      (List.length
         (List.filter
            (fun (r : Svc.Audit.record) -> r.Svc.Audit.served = "coalesced")
            records))
  | _ -> Alcotest.fail "expected an audit reply"

(* The daemon worker loop, inlined over [test_domains] domains. Worker
   interleavings can turn a late duplicate into an exact cache hit
   (the flight already closed), but never into a second solve: the
   deterministic invariants are one cold solve, one service.solve
   span, bit-identical replies and per-request trace ids. *)
let run_worker_herd ~engine ~jobs =
  let stop = Atomic.make false in
  let rm = Mutex.create () in
  let responses = ref [] in
  let workers =
    List.init test_domains (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              if
                E.wait_for_work engine ~stop:(fun () -> Atomic.get stop)
              then begin
                (match E.drain_next engine with
                 | [] -> ()
                 | rs ->
                   Mutex.lock rm;
                   responses := rs @ !responses;
                   Mutex.unlock rm);
                loop ()
              end
            in
            loop ()))
  in
  while
    Mutex.lock rm;
    let n = List.length !responses in
    Mutex.unlock rm;
    n < jobs
  do
    Domain.cpu_relax ()
  done;
  Atomic.set stop true;
  E.wake_all engine;
  List.iter Domain.join workers;
  !responses

let test_herd_across_workers () =
  Telemetry.Span.clear ();
  let e =
    engine_with
      ~config:{ E.default_config with E.workers = test_domains }
      base
  in
  for i = 1 to 32 do
    Alcotest.(check bool) "admitted" true
      (E.submit e (solve_req ~id:i 110) = [])
  done;
  let responses = run_worker_herd ~engine:e ~jobs:32 in
  Alcotest.(check int) "herd fully answered" 32 (List.length responses);
  let cold, rest =
    List.partition
      (function Pr.Solved { served = Pr.Cold; _ } -> true | _ -> false)
      responses
  in
  Alcotest.(check int) "exactly one cold solve" 1 (List.length cold);
  Alcotest.(check int) "exactly one service.solve span" 1
    (count_solve_spans ());
  List.iter
    (function
      | Pr.Solved { served = Pr.Coalesced | Pr.Exact_hit; _ } -> ()
      | _ -> Alcotest.fail "follower neither coalesced nor exact hit")
    rest;
  Alcotest.(check int) "every reply carries its own trace id" 32
    (distinct_trace_ids responses);
  match cold with
  | [ Pr.Solved { cost; rho; _ } ] ->
    List.iter
      (function
        | Pr.Solved { cost = c; rho = r; _ } ->
          Alcotest.(check int) "follower cost identical" cost c;
          Alcotest.(check (array int)) "follower split identical" rho r
        | _ -> ())
      rest
  | _ -> assert false

(* A leader that dies — dp-blackbox on a shared-types instance — must
   answer every follower with its error, not strand them. *)
let test_leader_failure_single_thread () =
  let e = engine_with base in
  for i = 1 to 8 do
    Alcotest.(check bool) "admitted" true
      (E.submit ~now:0.0 e (solve_req ~id:i ~spec:S.Dp_blackbox 110) = [])
  done;
  let responses = E.drain ~now:0.0 e in
  Alcotest.(check int) "herd fully answered" 8 (List.length responses);
  List.iter
    (function
      | Pr.Error { message; _ } ->
        Alcotest.(check bool) "error carries a message" true
          (String.length message > 0)
      | _ -> Alcotest.fail "expected every herd member to get the error")
    responses;
  (* The flight is gone: the engine serves the next request normally. *)
  let r = solved1 e (solve_req ~id:99 110) in
  check_served "engine recovered after the failed flight" Pr.Cold r.s_served

let test_leader_failure_across_workers () =
  let e =
    engine_with
      ~config:{ E.default_config with E.workers = test_domains }
      base
  in
  for i = 1 to 16 do
    Alcotest.(check bool) "admitted" true
      (E.submit e (solve_req ~id:i ~spec:S.Dp_blackbox 110) = [])
  done;
  (* Termination itself is the assertion: a stranded follower would
     hang this join. *)
  let responses = run_worker_herd ~engine:e ~jobs:16 in
  Alcotest.(check int) "herd fully answered" 16 (List.length responses);
  List.iter
    (function
      | Pr.Error _ -> ()
      | _ -> Alcotest.fail "expected every herd member to get the error")
    responses

(* --- shed policies at the engine level --- *)

let config_with ?(capacity = 2) policy =
  { E.default_config with E.queue_capacity = capacity; queue_policy = policy }

let test_drop_oldest_policy () =
  let e = engine_with ~config:(config_with Svc.Admission.Drop_oldest) base in
  Alcotest.(check bool) "first admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:1 50) = []);
  Alcotest.(check bool) "second admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:2 60) = []);
  (* The arrival is admitted; the oldest queued request is the one
     answered Overloaded — with a retry hint. *)
  (match E.submit ~now:0.0 e (solve_req ~id:3 70) with
   | [ Pr.Overloaded { id = Some 1; retry_after_ms = Some ms; _ } ] ->
     Alcotest.(check bool) "retry hint positive" true (ms > 0)
   | _ -> Alcotest.fail "expected the oldest request evicted");
  match E.drain ~now:0.0 e with
  | [ Pr.Solved { id = Some 2; _ }; Pr.Solved { id = Some 3; _ } ] -> ()
  | _ -> Alcotest.fail "expected the survivors drained in order"

let test_tenant_fair_policy () =
  let e =
    engine_with ~config:(config_with ~capacity:3 Svc.Admission.Tenant_fair)
      base
  in
  Alcotest.(check bool) "a/1 admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:1 ~tenant:"a" 50) = []);
  Alcotest.(check bool) "a/2 admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:2 ~tenant:"a" 60) = []);
  Alcotest.(check bool) "b/3 admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:3 ~tenant:"b" 70) = []);
  (* Tenant a hogs two slots: its newest entry is the victim; b's only
     request is untouchable. *)
  (match E.submit ~now:0.0 e (solve_req ~id:4 ~tenant:"c" 80) with
   | [ Pr.Overloaded { id = Some 2; _ } ] -> ()
   | _ -> Alcotest.fail "expected the hog's newest entry evicted");
  (* Now every tenant holds exactly one: nothing fair to evict, the
     arrival is rejected instead. *)
  (match E.submit ~now:0.0 e (solve_req ~id:5 ~tenant:"d" 90) with
   | [ Pr.Overloaded { id = Some 5; _ } ] -> ()
   | _ -> Alcotest.fail "expected the arrival rejected");
  match E.drain ~now:0.0 e with
  | [ Pr.Solved { id = Some 1; _ }; Pr.Solved { id = Some 3; _ };
      Pr.Solved { id = Some 4; _ } ] -> ()
  | _ -> Alcotest.fail "expected the three survivors drained in order"

(* Regression: an entry whose deadline lapsed while queued must not
   occupy a slot that bounces a live arrival off a full queue — the
   corpse is shed eagerly at enqueue, the arrival admitted. *)
let test_expired_entry_frees_slot () =
  let e =
    engine_with ~config:{ E.default_config with E.queue_capacity = 2 } base
  in
  Alcotest.(check bool) "doomed request admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:1 ~budget:(B.deadline 0.5) 50) = []);
  Alcotest.(check bool) "live request admitted" true
    (E.submit ~now:0.0 e (solve_req ~id:2 60) = []);
  (match E.submit ~now:10.0 e (solve_req ~id:3 70) with
   | [ Pr.Overloaded { id = Some 1; _ } ] -> ()
   | _ ->
     Alcotest.fail "expected the expired entry shed and the arrival admitted");
  Alcotest.(check int) "arrival holds the freed slot" 2 (E.queue_length e);
  match E.drain ~now:10.0 e with
  | [ Pr.Solved { id = Some 2; _ }; Pr.Solved { id = Some 3; _ } ] -> ()
  | _ -> Alcotest.fail "expected both live requests solved"

(* --- protocol fuzz: near-valid lines over a pipe daemon --- *)

let run_daemon_session lines =
  let req_read, req_write = Unix.pipe () in
  let resp_read, resp_write = Unix.pipe () in
  write_all req_write (String.concat "" (List.map (fun l -> l ^ "\n") lines));
  Unix.close req_write;
  let dump = open_out Filename.null in
  let oc = Unix.out_channel_of_descr resp_write in
  Svc.Daemon.serve_channels ~dump (Unix.in_channel_of_descr req_read) oc;
  close_out dump;
  close_out oc;
  let ic = Unix.in_channel_of_descr resp_read in
  let rec read_lines acc =
    match input_line ic with
    | line -> read_lines (line :: acc)
    | exception End_of_file -> List.rev acc
  in
  let out = read_lines [] in
  close_in ic;
  out

let decode_response_line line =
  match J.of_string line with
  | Error e -> Alcotest.fail ("response line is not JSON: " ^ e)
  | Ok j -> (
    match Pr.response_of_json j with
    | Error e -> Alcotest.fail ("response line is not a response: " ^ e)
    | Ok r -> r)

(* Hand-picked near-valid lines, each answered by a structured error on
   the same line — pinning which malformations are strict. *)
let strict_fuzz_cases =
  [ {|{"op":"frobnicate"}|};  (* unknown op *)
    {|{"op":""}|};
    {|{"op":42,"id":1}|};  (* wrong-typed op reads as missing *)
    {|{"noop":true}|};  (* no op at all *)
    {|[1,2,3]|};  (* not an object *)
    {|42|};
    {|{"op":"solve","id":1}|};  (* no source *)
    {|{"op":"solve","id":1,"ref":"app"}|};  (* min-cost without target *)
    {|{"op":"solve","id":1,"ref":"app","target":"many"}|};
        (* wrong-typed target reads as missing: strict *)
    {|{"op":"solve","id":1,"ref":"app","target":-3}|};
    {|{"op":"solve","id":1,"ref":"app","target":50,"reuse":"psychic"}|};
    {|{"op":"solve","id":1,"ref":"app","target":50,"spec":"gpu"}|};
    {|{"op":"solve","id":1,"ref":"app","problem":"types 1","target":5}|};
        (* ref and problem together *)
    {|{"op":"solve","version":2,"id":1,"ref":"app","target":50}|};
    {|{"op":"tick","session":"s"}|};  (* missing demand *)
    {|{"op":"audit","last":-1}|};
    {|{"op":"solve","id":1,"ref":"app","target":50|};  (* truncated *)
    {|{"op":"solve",}|};  (* trailing comma *)
    {|{"op" "solve"}|};  (* missing colon *)
  ]

let test_protocol_fuzz_strict () =
  (* Every bad line answers one structured error on its own line; the
     session never desyncs — the valid solve after the barrage still
     lands on its line, and Bye is last. *)
  let lines =
    [ J.to_string (Pr.request_to_json (Pr.Register { name = "app"; problem = base })) ]
    @ strict_fuzz_cases
    @ [ J.to_string (Pr.request_to_json (solve_req ~id:777 110));
        J.to_string (Pr.request_to_json Pr.Shutdown) ]
  in
  let out = run_daemon_session lines in
  Alcotest.(check int) "one response line per request line"
    (List.length lines) (List.length out);
  let responses = List.map decode_response_line out in
  (match responses with
   | Pr.Registered _ :: rest -> (
     let n = List.length strict_fuzz_cases in
     List.iteri
       (fun i r ->
         if i < n then
           match r with
           | Pr.Error { message; _ } ->
             Alcotest.(check bool)
               (Printf.sprintf "case %d answers a structured error" i)
               true
               (String.length message > 0)
           | _ ->
             Alcotest.failf "case %d (%s): expected an error"
               i (List.nth strict_fuzz_cases i))
       rest;
     match (List.nth rest n, List.nth rest (n + 1)) with
     | Pr.Solved { id = Some 777; _ }, Pr.Bye -> ()
     | _ -> Alcotest.fail "daemon desynced: sentinel solve or Bye misplaced")
   | _ -> Alcotest.fail "register reply missing")

(* Pinned lenient behaviors: the codec drops wrong-typed optional
   fields rather than rejecting the request, and duplicate keys read
   as their first occurrence. *)
let test_protocol_fuzz_lenient () =
  let lines =
    [ J.to_string (Pr.request_to_json (Pr.Register { name = "app"; problem = base }));
      (* wrong-typed id: dropped, request still served (no id echoed) *)
      {|{"op":"solve","id":"seven","ref":"app","target":110}|};
      (* duplicate keys: first occurrence wins *)
      {|{"op":"solve","id":5,"id":6,"ref":"app","target":110}|};
      (* unknown extra fields are ignored *)
      {|{"op":"solve","id":7,"ref":"app","target":110,"flavour":"blue"}|};
      J.to_string (Pr.request_to_json Pr.Shutdown) ]
  in
  let out = run_daemon_session lines in
  Alcotest.(check int) "one response line per request line"
    (List.length lines) (List.length out);
  match List.map decode_response_line out with
  | [ Pr.Registered _;
      Pr.Solved { id = None; _ };
      Pr.Solved { id = Some 5; _ };
      Pr.Solved { id = Some 7; _ };
      Pr.Bye ] -> ()
  | _ -> Alcotest.fail "lenient behaviors changed"

(* Random truncations of a valid solve line: always one structured
   error per line, never a crash or desync. *)
let test_protocol_fuzz_truncations () =
  let whole =
    J.to_string (Pr.request_to_json (solve_req ~id:1 ~trace_id:"req-fz" 110))
  in
  let cuts =
    (* every prefix of a JSON object line is invalid JSON *)
    List.init 24 (fun i ->
        String.sub whole 0 (1 + i * (String.length whole - 2) / 24))
  in
  let lines =
    [ J.to_string (Pr.request_to_json (Pr.Register { name = "app"; problem = base })) ]
    @ cuts
    @ [ J.to_string (Pr.request_to_json (solve_req ~id:888 110));
        J.to_string (Pr.request_to_json Pr.Shutdown) ]
  in
  let out = run_daemon_session lines in
  Alcotest.(check int) "one response line per request line"
    (List.length lines) (List.length out);
  let responses = List.map decode_response_line out in
  List.iteri
    (fun i r ->
      match r with
      | Pr.Error _ when i >= 1 && i <= List.length cuts -> ()
      | Pr.Registered _ when i = 0 -> ()
      | Pr.Solved { id = Some 888; _ } when i = List.length cuts + 1 -> ()
      | Pr.Bye when i = List.length cuts + 2 -> ()
      | _ -> Alcotest.failf "line %d out of place" i)
    responses

let suite =
  ( "service",
    [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json unicode and errors" `Quick
        test_json_unicode_and_errors;
      Alcotest.test_case "fingerprint permutation invariance" `Quick
        test_fingerprint_permutation_invariant;
      Alcotest.test_case "fingerprint distinguishes" `Quick
        test_fingerprint_distinguishes;
      Alcotest.test_case "cache LRU eviction order" `Quick
        test_cache_lru_eviction;
      Alcotest.test_case "cache lookup semantics" `Quick test_cache_lookups;
      Alcotest.test_case "exact replay from cache" `Quick test_exact_replay;
      Alcotest.test_case "monotone reuse is feasible" `Quick
        test_monotone_reuse_feasible;
      Alcotest.test_case "warm-start reuse" `Quick test_warm_start_reuse;
      Alcotest.test_case "equivalent inline problems share the cache" `Quick
        test_equivalent_inline_shares_cache;
      Alcotest.test_case "reuse none never hits" `Quick
        test_reuse_none_never_hits;
      Alcotest.test_case "unknown ref errors" `Quick test_unknown_ref_errors;
      Alcotest.test_case "admission sheds at the door" `Quick
        test_admission_door_shed;
      Alcotest.test_case "admission sheds expired deadlines" `Quick
        test_admission_deadline_shed;
      Alcotest.test_case "deadline slack degrades to the incumbent" `Quick
        test_deadline_slack_degrades;
      Alcotest.test_case "track protocol roundtrip" `Quick
        test_track_protocol_roundtrip;
      Alcotest.test_case "track response roundtrip" `Quick
        test_track_response_roundtrip;
      Alcotest.test_case "track session end to end" `Quick
        test_track_session_end_to_end;
      Alcotest.test_case "track unknown ref errors" `Quick
        test_track_unknown_ref_errors;
      Alcotest.test_case "metrics reply" `Quick test_metrics_reply;
      Alcotest.test_case "trace id round trip" `Quick test_trace_id_roundtrip;
      Alcotest.test_case "trace id stamps request spans" `Quick
        test_trace_id_on_spans;
      Alcotest.test_case "audit journal" `Quick test_audit_journal;
      Alcotest.test_case "audit honours the kill switch" `Quick
        test_audit_kill_switch;
      Alcotest.test_case "audit ring and jsonl file" `Quick
        test_audit_ring_and_file;
      Alcotest.test_case "daemon session over a pipe" `Quick
        test_daemon_over_pipe;
      Alcotest.test_case "thundering herd coalesces (single thread)" `Quick
        test_herd_single_thread;
      Alcotest.test_case "thundering herd coalesces (worker domains)" `Quick
        test_herd_across_workers;
      Alcotest.test_case "leader failure fails followers (single thread)"
        `Quick test_leader_failure_single_thread;
      Alcotest.test_case "leader failure fails followers (worker domains)"
        `Quick test_leader_failure_across_workers;
      Alcotest.test_case "drop-oldest evicts the head" `Quick
        test_drop_oldest_policy;
      Alcotest.test_case "tenant-fair evicts the hog's newest" `Quick
        test_tenant_fair_policy;
      Alcotest.test_case "expired queue entry frees its slot" `Quick
        test_expired_entry_frees_slot;
      Alcotest.test_case "protocol fuzz: strict rejections" `Quick
        test_protocol_fuzz_strict;
      Alcotest.test_case "protocol fuzz: pinned leniencies" `Quick
        test_protocol_fuzz_lenient;
      Alcotest.test_case "protocol fuzz: truncated lines" `Quick
        test_protocol_fuzz_truncations ] )
