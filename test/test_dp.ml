(* Tests for the two pseudo-polynomial dynamic programs (§ V-A and
   § V-B): hand cases, cross-checks against the exhaustive oracle and
   the exact ILP, and guard conditions. *)

module TG = Rentcost.Task_graph
module PF = Rentcost.Platform
module PB = Rentcost.Problem
module AL = Rentcost.Allocation
module DPB = Rentcost.Dp_blackbox
module DPD = Rentcost.Dp_disjoint
module EX = Rentcost.Exhaustive
module ILP = Rentcost.Ilp

let single_task_problem =
  (* Three black-box recipes: types (10c/10r), (18c/20r), (25c/30r). *)
  PB.create
    (PF.of_list [ (10, 10); (18, 20); (25, 30) ])
    (Array.init 3 (fun q -> TG.create ~ntypes:3 ~types:[| q |] ~edges:[]))

let test_blackbox_hand () =
  (* target 30: cheapest is one type-2 machine (25). *)
  let a = DPB.run ~problem:single_task_problem ~target:30 () in
  Alcotest.(check int) "cost 25" 25 a.AL.cost;
  Alcotest.(check bool) "feasible" true (AL.feasible single_task_problem ~target:30 a);
  (* target 50: type2 + type1 = 43 vs 2x type2 = 50 vs ... 43 best *)
  let a50 = DPB.run ~problem:single_task_problem ~target:50 () in
  Alcotest.(check int) "cost 43" 43 a50.AL.cost

let test_blackbox_zero_target () =
  let a = DPB.run ~problem:single_task_problem ~target:0 () in
  Alcotest.(check int) "free" 0 a.AL.cost

let test_blackbox_guards () =
  Alcotest.check_raises "non blackbox"
    (Invalid_argument
       "Dp_blackbox.run: instance is not black-box (one task per recipe, \
        pairwise distinct types)") (fun () ->
      ignore (DPB.run ~problem:PB.illustrating ~target:10 ()));
  Alcotest.check_raises "negative target"
    (Invalid_argument "Dp_blackbox.run: negative target") (fun () ->
      ignore (DPB.run ~problem:single_task_problem ~target:(-1) ()))

let disjoint_problem =
  (* Recipe 0 over types {0,1}, recipe 1 over types {2,3}; no sharing. *)
  PB.create
    (PF.of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ])
    [| TG.chain ~ntypes:4 ~types:[| 0; 1 |]; TG.chain ~ntypes:4 ~types:[| 2; 3 |] |]

let test_disjoint_hand () =
  (* target 30: all on recipe 1 -> x2 = 1 (25) + x3 = 1 (33) = 58;
     all on recipe 0 -> 3*10 + 2*18 = 66; split 10/20 ->
     (10+18) + (25+33) = 86. Optimum 58. *)
  let a = DPD.run ~problem:disjoint_problem ~target:30 () in
  Alcotest.(check int) "cost 58" 58 a.AL.cost;
  Alcotest.(check (array int)) "split" [| 0; 30 |] a.AL.rho

let test_disjoint_guards () =
  Alcotest.check_raises "shared types"
    (Invalid_argument
       "Dp_disjoint.run: recipes share task types (general case, use Ilp or \
        Heuristics)") (fun () -> ignore (DPD.run ~problem:PB.illustrating ~target:10 ()));
  Alcotest.check_raises "negative target"
    (Invalid_argument "Dp_disjoint.run: negative target") (fun () ->
      ignore (DPD.run ~problem:disjoint_problem ~target:(-3) ()))

let test_disjoint_zero_target () =
  let a = DPD.run ~problem:disjoint_problem ~target:0 () in
  Alcotest.(check int) "free" 0 a.AL.cost

let test_disjoint_single_recipe_equals_closed_form () =
  let p =
    PB.create (PF.of_list [ (7, 3); (11, 5) ])
      [| TG.chain ~ntypes:2 ~types:[| 0; 1; 0 |] |]
  in
  for target = 0 to 20 do
    Alcotest.(check int)
      (Printf.sprintf "target %d" target)
      (Rentcost.Costing.single_graph p ~j:0 ~target)
      (DPD.run ~problem:p ~target ()).AL.cost
  done

(* --- exhaustive oracle --- *)

let test_exhaustive_matches_ilp_on_illustrating () =
  List.iter
    (fun target ->
      let ex = EX.run ~problem:PB.illustrating ~target () in
      let ilp = ILP.optimize ~problem:PB.illustrating ~target () in
      match ilp.ILP.allocation with
      | Some a ->
        Alcotest.(check int) (Printf.sprintf "target %d" target) ex.AL.cost a.AL.cost
      | None -> Alcotest.fail "ILP found no solution")
    [ 0; 1; 7; 10; 23; 50 ]

let test_count_compositions () =
  Alcotest.(check int) "C(12,2)" 66 (EX.count_compositions ~parts:3 ~total:10);
  Alcotest.(check int) "1 part" 1 (EX.count_compositions ~parts:1 ~total:100);
  Alcotest.(check int) "total 0" 1 (EX.count_compositions ~parts:4 ~total:0)

(* --- random cross-checks --- *)

let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:60 ~name gen f)

(* Random disjoint instances: two recipes, types 0..1 vs 2..3. *)
let disjoint_gen =
  QCheck2.Gen.(
    pair
      (pair
         (list_size (return 4) (pair (int_range 1 15) (int_range 1 15)))
         (pair (int_range 1 3) (int_range 1 3)))
      (int_range 0 25))

let build_disjoint ((machines, (n1, n2)), target) =
  let platform = PF.of_list machines in
  let types1 = Array.init n1 (fun i -> i mod 2) in
  let types2 = Array.init n2 (fun i -> 2 + (i mod 2)) in
  let p =
    PB.create platform
      [| TG.chain ~ntypes:4 ~types:types1; TG.chain ~ntypes:4 ~types:types2 |]
  in
  (p, target)

let blackbox_gen =
  QCheck2.Gen.(
    pair (list_size (return 3) (pair (int_range 1 15) (int_range 1 15))) (int_range 0 30))

let props =
  [ prop "disjoint DP matches exhaustive" disjoint_gen (fun input ->
        let p, target = build_disjoint input in
        (DPD.run ~problem:p ~target ()).AL.cost = (EX.run ~problem:p ~target ()).AL.cost);
    prop "disjoint DP matches ILP" disjoint_gen (fun input ->
        let p, target = build_disjoint input in
        match (ILP.optimize ~problem:p ~target ()).ILP.allocation with
        | Some a -> (DPD.run ~problem:p ~target ()).AL.cost = a.AL.cost
        | None -> false);
    prop "disjoint DP allocation is feasible" disjoint_gen (fun input ->
        let p, target = build_disjoint input in
        AL.feasible p ~target (DPD.run ~problem:p ~target ()));
    prop "blackbox DP matches exhaustive" blackbox_gen (fun (machines, target) ->
        let platform = PF.of_list machines in
        let p =
          PB.create platform
            (Array.init 3 (fun q -> TG.create ~ntypes:3 ~types:[| q |] ~edges:[]))
        in
        (DPB.run ~problem:p ~target ()).AL.cost = (EX.run ~problem:p ~target ()).AL.cost);
    prop "blackbox DP equals disjoint DP on blackbox instances" blackbox_gen
      (fun (machines, target) ->
        let platform = PF.of_list machines in
        let p =
          PB.create platform
            (Array.init 3 (fun q -> TG.create ~ntypes:3 ~types:[| q |] ~edges:[]))
        in
        (DPB.run ~problem:p ~target ()).AL.cost = (DPD.run ~problem:p ~target ()).AL.cost) ]

let suite =
  ( "dp",
    [ Alcotest.test_case "blackbox hand-checked" `Quick test_blackbox_hand;
      Alcotest.test_case "blackbox zero target" `Quick test_blackbox_zero_target;
      Alcotest.test_case "blackbox guards" `Quick test_blackbox_guards;
      Alcotest.test_case "disjoint hand-checked" `Quick test_disjoint_hand;
      Alcotest.test_case "disjoint guards" `Quick test_disjoint_guards;
      Alcotest.test_case "disjoint zero target" `Quick test_disjoint_zero_target;
      Alcotest.test_case "disjoint single recipe = closed form" `Quick
        test_disjoint_single_recipe_equals_closed_form;
      Alcotest.test_case "exhaustive matches ILP" `Quick
        test_exhaustive_matches_ilp_on_illustrating;
      Alcotest.test_case "count compositions" `Quick test_count_compositions ]
    @ props )
