(* Telemetry: span nesting and ordering, ring wraparound, the
   kill-switch's zero-allocation guarantee, histogram bucket laws
   (qcheck), the span JSONL codec round-trip, and registration under
   concurrent domains.

   Spans and the enabled flag are global state; every test that
   touches them restores enabled = true and clears the ring so tests
   stay order-independent. *)

module T = Telemetry
module M = Rentcost_service.Metrics
module J = Rentcost_service.Json

(* A deterministic clock: each read advances one tick, so durations
   count the clock reads (and nested spans get distinct, predictable
   timings). *)
let install_tick_clock () =
  let t = ref 0.0 in
  T.set_clock (fun () ->
      t := !t +. 1.0;
      !t)

let restore () =
  T.set_clock Unix.gettimeofday;
  T.set_enabled true;
  T.Span.set_sink None;
  T.Span.clear ()

let with_clean f () = Fun.protect ~finally:restore f

(* --- spans --- *)

let test_span_nesting =
  with_clean (fun () ->
      install_tick_clock ();
      T.Span.clear ();
      let v =
        T.Span.with_span "outer" (fun () ->
            T.Span.with_span "inner_a" (fun () -> ());
            T.Span.with_span ~attrs:[ ("k", "v") ] "inner_b" (fun () -> 17))
      in
      Alcotest.(check int) "body value" 17 v;
      match T.Span.recent () with
      | [ a; b; outer ] ->
        Alcotest.(check string) "first completed" "inner_a" a.T.Span.name;
        Alcotest.(check string) "second completed" "inner_b" b.T.Span.name;
        Alcotest.(check string) "parent completes last" "outer" outer.T.Span.name;
        Alcotest.(check int) "inner_a parented" outer.T.Span.id a.T.Span.parent;
        Alcotest.(check int) "inner_b parented" outer.T.Span.id b.T.Span.parent;
        Alcotest.(check int) "outer is a root" 0 outer.T.Span.parent;
        Alcotest.(check int) "outer depth" 0 outer.T.Span.depth;
        Alcotest.(check int) "inner depth" 1 a.T.Span.depth;
        Alcotest.(check (list (pair string string)))
          "attrs kept" [ ("k", "v") ] b.T.Span.attrs;
        Alcotest.(check bool) "ids increase" true
          (outer.T.Span.id < a.T.Span.id && a.T.Span.id < b.T.Span.id);
        (* The tick clock makes every duration a positive whole number
           of clock reads, and the parent encloses the children. *)
        Alcotest.(check bool) "durations positive" true
          (List.for_all
             (fun s -> s.T.Span.duration > 0.0)
             [ a; b; outer ]);
        Alcotest.(check bool) "parent encloses children" true
          (outer.T.Span.duration > a.T.Span.duration +. b.T.Span.duration
           -. 1.0)
      | l ->
        Alcotest.failf "expected 3 spans, got %d" (List.length l))

let test_span_exception =
  with_clean (fun () ->
      T.Span.clear ();
      (try
         T.Span.with_span "boom" (fun () -> failwith "expected")
       with Failure _ -> ());
      match T.Span.recent () with
      | [ s ] ->
        Alcotest.(check string) "span recorded on raise" "boom" s.T.Span.name;
        (* The parent context must be restored after the raise. *)
        T.Span.with_span "after" (fun () -> ());
        let after = List.nth (T.Span.recent ()) 1 in
        Alcotest.(check int) "nesting state restored" 0 after.T.Span.parent
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_ring_wraparound =
  with_clean (fun () ->
      let saved = T.Span.capacity () in
      Fun.protect
        ~finally:(fun () -> T.Span.set_capacity saved)
        (fun () ->
          T.Span.set_capacity 4;
          for i = 1 to 6 do
            T.Span.record
              ~name:(Printf.sprintf "s%d" i)
              ~start:(float_of_int i) ~duration:1.0 ()
          done;
          Alcotest.(check int) "total recorded" 6 (T.Span.recorded ());
          let names =
            List.map (fun s -> s.T.Span.name) (T.Span.recent ())
          in
          Alcotest.(check (list string))
            "ring keeps the newest, oldest first"
            [ "s3"; "s4"; "s5"; "s6" ] names))

let test_disabled_zero_alloc =
  with_clean (fun () ->
      T.set_enabled false;
      let f () = 7 in
      (* Warm up any one-time allocation paths. *)
      for _ = 1 to 3 do
        ignore (T.Span.with_span "off" f)
      done;
      let c = T.counter "test.zero_alloc" in
      let h = T.histogram "test.zero_alloc_hist" ~bounds:[| 1.0 |] in
      let before = Gc.minor_words () in
      for _ = 1 to 1000 do
        ignore (T.Span.with_span "off" f);
        T.bump c;
        T.observe h 0.5
      done;
      let allocated = Gc.minor_words () -. before in
      Alcotest.(check bool)
        (Printf.sprintf "disabled instruments allocate nothing (%.0f words)"
           allocated)
        true (allocated = 0.0);
      Alcotest.(check int) "counter frozen" 0 (T.read c);
      Alcotest.(check int) "histogram frozen" 0 (T.snapshot h).T.h_count;
      Alcotest.(check int) "no spans" 0 (T.Span.recorded ()))

(* --- histograms --- *)

let test_histogram_basics () =
  let h = T.histogram "test.hist_basics" ~bounds:[| 1.0; 10.0; 100.0 |] in
  List.iter (T.observe h) [ 0.5; 1.0; 5.0; 10.0; 50.0; 1000.0 ];
  let s = T.snapshot h in
  (* le semantics: 1.0 lands in the first bucket, 10.0 in the second. *)
  Alcotest.(check (list int)) "bucket counts (le semantics, overflow last)"
    [ 2; 2; 1; 1 ]
    (Array.to_list s.T.h_counts);
  Alcotest.(check int) "count" 6 s.T.h_count;
  Alcotest.(check (float 1e-9)) "sum" 1066.5 s.T.h_sum;
  Alcotest.check_raises "bounds mismatch rejected"
    (Invalid_argument
       "Telemetry.histogram: \"test.hist_basics\" already registered with \
        different bounds")
    (fun () -> ignore (T.histogram "test.hist_basics" ~bounds:[| 2.0 |]))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

(* Every observation lands in exactly one bucket: counts sum to the
   observation count, and each value lands in the first bucket whose
   bound is >= the value. *)
let hist_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 6) (float_bound_inclusive 100.0))
      (list_size (int_range 0 40) (float_bound_inclusive 120.0)))

let bucket_prop (raw_bounds, values) =
  (* Distinct sorted bounds; a fresh histogram name per shape so
     re-registration rules don't interfere. *)
  let bounds =
    Array.of_list (List.sort_uniq compare raw_bounds)
  in
  let name =
    Printf.sprintf "test.prop_%d_%f" (Array.length bounds)
      (Array.fold_left ( +. ) 0.0 bounds)
  in
  let h = T.histogram name ~bounds in
  let before = T.snapshot h in
  List.iter (T.observe h) values;
  let after = T.snapshot h in
  let added = Array.map2 ( - ) after.T.h_counts before.T.h_counts in
  let expect = Array.make (Array.length bounds + 1) 0 in
  List.iter
    (fun v ->
      let rec first i =
        if i >= Array.length bounds then i
        else if v <= bounds.(i) then i
        else first (i + 1)
      in
      let b = first 0 in
      expect.(b) <- expect.(b) + 1)
    values;
  Array.for_all2 ( = ) added expect
  && after.T.h_count - before.T.h_count = List.length values
  && Array.fold_left ( + ) 0 added = List.length values

(* --- the span JSONL codec --- *)

let span_eq : T.Span.t Alcotest.testable =
  Alcotest.testable
    (fun fmt s -> Format.fprintf fmt "%s#%d" s.T.Span.name s.T.Span.id)
    ( = )

let test_span_json_roundtrip =
  with_clean (fun () ->
      install_tick_clock ();
      T.Span.clear ();
      T.Span.with_span "outer" (fun () ->
          T.Span.with_span ~attrs:[ ("engine", "ilp"); ("target", "70") ]
            "inner" (fun () -> ()));
      let spans = T.Span.recent () in
      List.iter
        (fun s ->
          (* Through the JSON value and through the printed line, as a
             trace file reader would see it. *)
          (match M.span_of_json (M.span_to_json s) with
           | Ok s' -> Alcotest.check span_eq "value round-trip" s s'
           | Error e -> Alcotest.fail e);
          match J.of_string (J.to_string (M.span_to_json s)) with
          | Error e -> Alcotest.fail ("reparse: " ^ e)
          | Ok j -> (
            match M.span_of_json j with
            | Ok s' -> Alcotest.check span_eq "line round-trip" s s'
            | Error e -> Alcotest.fail e))
        spans)

let test_trace_sink =
  with_clean (fun () ->
      T.Span.clear ();
      let path = Filename.temp_file "rentcost_trace" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          M.install_trace ~path;
          T.Span.with_span "a" (fun () ->
              T.Span.with_span "b" (fun () -> ()));
          M.close_trace ();
          let ic = open_in path in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          let decoded =
            List.rev_map
              (fun line ->
                match J.of_string line with
                | Error e -> Alcotest.fail ("trace line: " ^ e)
                | Ok j -> (
                  match M.span_of_json j with
                  | Error e -> Alcotest.fail ("trace span: " ^ e)
                  | Ok s -> s))
              !lines
          in
          Alcotest.(check (list string))
            "sink saw both spans in completion order" [ "b"; "a" ]
            (List.map (fun s -> s.T.Span.name) decoded)))

(* --- concurrent registration (regression: Telemetry.all while other
   domains register) --- *)

let test_concurrent_registration () =
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 199 do
              let c =
                T.counter (Printf.sprintf "test.conc.%d.%d" d (i mod 50))
              in
              T.bump c;
              ignore
                (T.histogram
                   (Printf.sprintf "test.conc_hist.%d.%d" d (i mod 10))
                   ~bounds:[| 1.0; 2.0 |])
            done))
  in
  (* Snapshot and render concurrently with the registrations; the laws
     here are "never raises" and "snapshots are sorted". *)
  for _ = 1 to 50 do
    let names = List.map fst (T.all ()) in
    Alcotest.(check bool) "counter snapshot sorted" true
      (List.sort compare names = names);
    ignore (T.histograms ());
    ignore (T.text_exposition ())
  done;
  List.iter Domain.join domains;
  let found = List.filter (fun (n, _) -> String.length n >= 10 && String.sub n 0 10 = "test.conc.") (T.all ()) in
  Alcotest.(check int) "all concurrent counters registered" 200
    (List.length found)

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
      Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
      Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
      Alcotest.test_case "disabled mode allocates nothing" `Quick
        test_disabled_zero_alloc;
      Alcotest.test_case "histogram le-bucket semantics" `Quick
        test_histogram_basics;
      prop "every observation lands in exactly one bucket" hist_gen bucket_prop;
      Alcotest.test_case "span json round-trip" `Quick test_span_json_roundtrip;
      Alcotest.test_case "jsonl trace sink round-trip" `Quick test_trace_sink;
      Alcotest.test_case "registration is domain-safe" `Quick
        test_concurrent_registration;
    ] )
