(* Telemetry: span nesting and ordering, ring wraparound, the
   kill-switch's zero-allocation guarantee, histogram bucket laws
   (qcheck), the span JSONL codec round-trip, and registration under
   concurrent domains.

   Spans and the enabled flag are global state; every test that
   touches them restores enabled = true and clears the ring so tests
   stay order-independent. *)

module T = Telemetry
module M = Rentcost_service.Metrics
module J = Rentcost_service.Json

(* A deterministic clock: each read advances one tick, so durations
   count the clock reads (and nested spans get distinct, predictable
   timings). *)
let install_tick_clock () =
  let t = ref 0.0 in
  T.set_clock (fun () ->
      t := !t +. 1.0;
      !t)

let restore () =
  T.set_clock Unix.gettimeofday;
  T.set_enabled true;
  T.Span.set_sink None;
  T.Span.clear ()

let with_clean f () = Fun.protect ~finally:restore f

(* --- spans --- *)

let test_span_nesting =
  with_clean (fun () ->
      install_tick_clock ();
      T.Span.clear ();
      let v =
        T.Span.with_span "outer" (fun () ->
            T.Span.with_span "inner_a" (fun () -> ());
            T.Span.with_span ~attrs:[ ("k", "v") ] "inner_b" (fun () -> 17))
      in
      Alcotest.(check int) "body value" 17 v;
      match T.Span.recent () with
      | [ a; b; outer ] ->
        Alcotest.(check string) "first completed" "inner_a" a.T.Span.name;
        Alcotest.(check string) "second completed" "inner_b" b.T.Span.name;
        Alcotest.(check string) "parent completes last" "outer" outer.T.Span.name;
        Alcotest.(check int) "inner_a parented" outer.T.Span.id a.T.Span.parent;
        Alcotest.(check int) "inner_b parented" outer.T.Span.id b.T.Span.parent;
        Alcotest.(check int) "outer is a root" 0 outer.T.Span.parent;
        Alcotest.(check int) "outer depth" 0 outer.T.Span.depth;
        Alcotest.(check int) "inner depth" 1 a.T.Span.depth;
        Alcotest.(check (list (pair string string)))
          "attrs kept" [ ("k", "v") ] b.T.Span.attrs;
        Alcotest.(check bool) "ids increase" true
          (outer.T.Span.id < a.T.Span.id && a.T.Span.id < b.T.Span.id);
        (* The tick clock makes every duration a positive whole number
           of clock reads, and the parent encloses the children. *)
        Alcotest.(check bool) "durations positive" true
          (List.for_all
             (fun s -> s.T.Span.duration > 0.0)
             [ a; b; outer ]);
        Alcotest.(check bool) "parent encloses children" true
          (outer.T.Span.duration > a.T.Span.duration +. b.T.Span.duration
           -. 1.0)
      | l ->
        Alcotest.failf "expected 3 spans, got %d" (List.length l))

let test_span_exception =
  with_clean (fun () ->
      T.Span.clear ();
      (try
         T.Span.with_span "boom" (fun () -> failwith "expected")
       with Failure _ -> ());
      match T.Span.recent () with
      | [ s ] ->
        Alcotest.(check string) "span recorded on raise" "boom" s.T.Span.name;
        (* The parent context must be restored after the raise. *)
        T.Span.with_span "after" (fun () -> ());
        let after = List.nth (T.Span.recent ()) 1 in
        Alcotest.(check int) "nesting state restored" 0 after.T.Span.parent
      | l -> Alcotest.failf "expected 1 span, got %d" (List.length l))

let test_ring_wraparound =
  with_clean (fun () ->
      let saved = T.Span.capacity () in
      Fun.protect
        ~finally:(fun () -> T.Span.set_capacity saved)
        (fun () ->
          T.Span.set_capacity 4;
          for i = 1 to 6 do
            T.Span.record
              ~name:(Printf.sprintf "s%d" i)
              ~start:(float_of_int i) ~duration:1.0 ()
          done;
          Alcotest.(check int) "total recorded" 6 (T.Span.recorded ());
          let names =
            List.map (fun s -> s.T.Span.name) (T.Span.recent ())
          in
          Alcotest.(check (list string))
            "ring keeps the newest, oldest first"
            [ "s3"; "s4"; "s5"; "s6" ] names))

let test_disabled_zero_alloc =
  with_clean (fun () ->
      T.set_enabled false;
      let f () = 7 in
      (* Warm up any one-time allocation paths. *)
      for _ = 1 to 3 do
        ignore (T.Span.with_span "off" f)
      done;
      let c = T.counter "test.zero_alloc" in
      let h = T.histogram "test.zero_alloc_hist" ~bounds:[| 1.0 |] in
      (* A labelled cell resolved up front is an ordinary counter, and
         the engine-style guarded lookup skips the registry entirely —
         both must be free when the switch is off. *)
      let vec = T.counter_vec "test.zero_alloc_vec" ~labels:[ "tenant" ] in
      let cell = T.counter_with vec [ "acme" ] in
      let before = Gc.minor_words () in
      for _ = 1 to 1000 do
        ignore (T.Span.with_span "off" f);
        T.bump c;
        T.bump cell;
        if T.enabled () then T.bump (T.counter_with vec [ "acme" ]);
        T.observe h 0.5
      done;
      let allocated = Gc.minor_words () -. before in
      Alcotest.(check bool)
        (Printf.sprintf "disabled instruments allocate nothing (%.0f words)"
           allocated)
        true (allocated = 0.0);
      Alcotest.(check int) "counter frozen" 0 (T.read c);
      Alcotest.(check int) "labelled cell frozen" 0 (T.read cell);
      Alcotest.(check int) "histogram frozen" 0 (T.snapshot h).T.h_count;
      Alcotest.(check int) "no spans" 0 (T.Span.recorded ()))

(* --- labelled families --- *)

let test_labelled_counters () =
  let vec = T.counter_vec "test.vec_basics" ~labels:[ "tenant"; "rung" ] in
  let a = T.counter_with vec [ "acme"; "cold" ] in
  T.bump a;
  T.add a 2;
  (* Equal label values find the same cell, so increments accumulate. *)
  T.bump (T.counter_with vec [ "acme"; "cold" ]);
  T.bump (T.counter_with vec [ "acme"; "exact" ]);
  Alcotest.(check int) "same values, same cell" 4 (T.read a);
  (match
     List.find_opt
       (fun (n, _, _) -> n = "test.vec_basics")
       (T.counter_vecs ())
   with
  | None -> Alcotest.fail "family not in the snapshot"
  | Some (_, labels, cells) ->
    Alcotest.(check (list string)) "label names kept" [ "tenant"; "rung" ]
      labels;
    Alcotest.(check
                (list (pair (list string) int)))
      "cells sorted by label values"
      [ ([ "acme"; "cold" ], 4); ([ "acme"; "exact" ], 1) ]
      cells);
  (* Re-registering the family with equal labels is the find half of
     find-or-create; different labels are a programming error. *)
  ignore (T.counter_vec "test.vec_basics" ~labels:[ "tenant"; "rung" ]);
  Alcotest.(check bool) "label-name mismatch raises" true
    (match T.counter_vec "test.vec_basics" ~labels:[ "rung" ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "arity mismatch raises" true
    (match T.counter_with vec [ "acme" ] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_labelled_histograms () =
  let vec =
    T.histogram_vec "test.vec_hist" ~labels:[ "engine" ] ~bounds:[| 1.0; 2.0 |]
  in
  let cell = T.histogram_with vec [ "ilp" ] in
  List.iter (T.observe cell) [ 0.5; 1.5; 9.0 ];
  T.observe (T.histogram_with vec [ "ilp" ]) 0.5;
  (match
     List.find_opt (fun (n, _, _) -> n = "test.vec_hist") (T.histogram_vecs ())
   with
  | None -> Alcotest.fail "family not in the snapshot"
  | Some (_, labels, cells) ->
    Alcotest.(check (list string)) "label names kept" [ "engine" ] labels;
    (match cells with
    | [ ([ "ilp" ], s) ] ->
      Alcotest.(check (list int)) "cell buckets" [ 2; 1; 1 ]
        (Array.to_list s.T.h_counts);
      Alcotest.(check int) "cell count" 4 s.T.h_count
    | _ -> Alcotest.fail "expected exactly the ilp cell"));
  (* Labelled and plain series of one name share buckets, so a bounds
     mismatch — either way round — is rejected. *)
  Alcotest.(check bool) "bounds mismatch raises" true
    (match
       T.histogram_vec "test.vec_hist" ~labels:[ "engine" ] ~bounds:[| 7.0 |]
     with
    | _ -> false
    | exception Invalid_argument _ -> true);
  Alcotest.(check bool) "plain histogram bounds mismatch raises" true
    (match T.histogram "test.vec_hist" ~bounds:[| 7.0 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* Four domains race find-or-create on the *same* (name, label-vector):
   every increment must land on the one shared cell. *)
let test_labelled_concurrent () =
  let per_domain = 500 in
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              let vec =
                T.counter_vec "test.vec_conc" ~labels:[ "tenant"; "rung" ]
              in
              T.bump (T.counter_with vec [ "shared"; "cold" ]);
              (* A per-domain series interleaved with the shared one,
                 so cell creation races cell lookup. *)
              if i mod 7 = 0 then
                T.bump
                  (T.counter_with vec [ Printf.sprintf "d%d" d; "warm" ])
            done))
  in
  List.iter Domain.join domains;
  let vec = T.counter_vec "test.vec_conc" ~labels:[ "tenant"; "rung" ] in
  Alcotest.(check int) "no lost increments on the shared cell"
    (4 * per_domain)
    (T.read (T.counter_with vec [ "shared"; "cold" ]));
  List.iter
    (fun d ->
      Alcotest.(check int)
        (Printf.sprintf "domain %d series intact" d)
        (per_domain / 7)
        (T.read (T.counter_with vec [ Printf.sprintf "d%d" d; "warm" ])))
    [ 0; 1; 2; 3 ]

(* --- gauges --- *)

let test_gauges =
  with_clean (fun () ->
      let v = ref 1.5 in
      T.gauge "test.gauge" (fun () -> !v);
      Alcotest.(check (option (float 1e-9))) "read at scrape" (Some 1.5)
        (List.assoc_opt "test.gauge" (T.gauges ()));
      v := 4.0;
      (* Gauges are callbacks, not recorded state: the kill switch does
         not freeze them. *)
      T.set_enabled false;
      Alcotest.(check (option (float 1e-9))) "live while disabled" (Some 4.0)
        (List.assoc_opt "test.gauge" (T.gauges ()));
      T.set_enabled true;
      (* Re-registering replaces the callback. *)
      T.gauge "test.gauge" (fun () -> 9.0);
      Alcotest.(check (option (float 1e-9))) "replaced" (Some 9.0)
        (List.assoc_opt "test.gauge" (T.gauges ()));
      let names = List.map fst (T.gauges ()) in
      List.iter
        (fun p ->
          Alcotest.(check bool) (p ^ " registered") true (List.mem p names))
        [
          "process.uptime_seconds"; "process.heap_words";
          "process.major_collections";
        ])

(* --- golden exposition block ---

   The full exposition includes every instrument other tests have
   registered, so the golden compare extracts just the families this
   test owns (unique names) and pins their rendered lines exactly:
   HELP escaping, TYPE lines, the _total suffix, plain-then-labelled
   ordering, and label-value escaping. *)

let test_exposition_golden () =
  let c = T.counter ~help:"Requests served.\nBy anyone." "test.golden_req" in
  T.add c 3;
  let vec = T.counter_vec "test.golden_req" ~labels:[ "tenant"; "rung" ] in
  T.add (T.counter_with vec [ "a\"cme\\x"; "cold\nstart" ]) 2;
  T.bump (T.counter_with vec [ "zeta"; "warm" ]);
  T.gauge ~help:"A level." "test.golden_level" (fun () -> 2.5);
  let h =
    T.histogram ~help:"Sizes." "test.golden_size" ~bounds:[| 1.0; 10.0 |]
  in
  List.iter (T.observe h) [ 0.5; 5.0; 50.0 ];
  let lines = String.split_on_char '\n' (T.text_exposition ()) in
  let block prefix =
    List.filter
      (fun line ->
        let mentions sub =
          let n = String.length sub and m = String.length line in
          let rec go i = i + n <= m && (String.sub line i n = sub || go (i + 1)) in
          go 0
        in
        mentions prefix)
      lines
  in
  Alcotest.(check (list string)) "counter family block"
    [
      "# HELP test_golden_req_total Requests served.\\nBy anyone.";
      "# TYPE test_golden_req_total counter";
      "test_golden_req_total 3";
      "test_golden_req_total{tenant=\"a\\\"cme\\\\x\",rung=\"cold\\nstart\"} 2";
      "test_golden_req_total{tenant=\"zeta\",rung=\"warm\"} 1";
    ]
    (block "test_golden_req");
  Alcotest.(check (list string)) "gauge block"
    [
      "# HELP test_golden_level A level.";
      "# TYPE test_golden_level gauge";
      "test_golden_level 2.5";
    ]
    (block "test_golden_level");
  Alcotest.(check (list string)) "histogram block"
    [
      "# HELP test_golden_size Sizes.";
      "# TYPE test_golden_size histogram";
      "test_golden_size_bucket{le=\"1\"} 1";
      "test_golden_size_bucket{le=\"10\"} 2";
      "test_golden_size_bucket{le=\"+Inf\"} 3";
      "test_golden_size_sum 55.5";
      "test_golden_size_count 3";
    ]
    (block "test_golden_size")

(* --- histograms --- *)

let test_histogram_basics () =
  let h = T.histogram "test.hist_basics" ~bounds:[| 1.0; 10.0; 100.0 |] in
  List.iter (T.observe h) [ 0.5; 1.0; 5.0; 10.0; 50.0; 1000.0 ];
  let s = T.snapshot h in
  (* le semantics: 1.0 lands in the first bucket, 10.0 in the second. *)
  Alcotest.(check (list int)) "bucket counts (le semantics, overflow last)"
    [ 2; 2; 1; 1 ]
    (Array.to_list s.T.h_counts);
  Alcotest.(check int) "count" 6 s.T.h_count;
  Alcotest.(check (float 1e-9)) "sum" 1066.5 s.T.h_sum;
  Alcotest.check_raises "bounds mismatch rejected"
    (Invalid_argument
       "Telemetry.histogram: \"test.hist_basics\" already registered with \
        different bounds")
    (fun () -> ignore (T.histogram "test.hist_basics" ~bounds:[| 2.0 |]))

let prop name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:300 ~name gen f)

(* Every observation lands in exactly one bucket: counts sum to the
   observation count, and each value lands in the first bucket whose
   bound is >= the value. *)
let hist_gen =
  QCheck2.Gen.(
    pair
      (list_size (int_range 1 6) (float_bound_inclusive 100.0))
      (list_size (int_range 0 40) (float_bound_inclusive 120.0)))

let bucket_prop (raw_bounds, values) =
  (* Distinct sorted bounds; a fresh histogram name per shape so
     re-registration rules don't interfere. *)
  let bounds =
    Array.of_list (List.sort_uniq compare raw_bounds)
  in
  let name =
    Printf.sprintf "test.prop_%d_%f" (Array.length bounds)
      (Array.fold_left ( +. ) 0.0 bounds)
  in
  let h = T.histogram name ~bounds in
  let before = T.snapshot h in
  List.iter (T.observe h) values;
  let after = T.snapshot h in
  let added = Array.map2 ( - ) after.T.h_counts before.T.h_counts in
  let expect = Array.make (Array.length bounds + 1) 0 in
  List.iter
    (fun v ->
      let rec first i =
        if i >= Array.length bounds then i
        else if v <= bounds.(i) then i
        else first (i + 1)
      in
      let b = first 0 in
      expect.(b) <- expect.(b) + 1)
    values;
  Array.for_all2 ( = ) added expect
  && after.T.h_count - before.T.h_count = List.length values
  && Array.fold_left ( + ) 0 added = List.length values

(* --- trace ids --- *)

let test_trace_id =
  with_clean (fun () ->
      T.Span.clear ();
      Alcotest.(check (option string)) "no ambient id" None (T.Span.trace_id ());
      T.Span.with_trace_id "req-outer" (fun () ->
          Alcotest.(check (option string)) "id set" (Some "req-outer")
            (T.Span.trace_id ());
          T.Span.with_span "a" (fun () -> ());
          T.Span.with_trace_id "req-inner" (fun () ->
              T.Span.with_span "b" (fun () -> ()));
          (* The outer id is restored after the nested scope... *)
          T.Span.record ~name:"manual" ~start:1.0 ~duration:0.5 ());
      (* ...and cleared entirely outside every scope. *)
      T.Span.with_span "outside" (fun () -> ());
      let attr_of name =
        match
          List.find_opt (fun s -> s.T.Span.name = name) (T.Span.recent ())
        with
        | None -> Alcotest.failf "span %s not recorded" name
        | Some s -> List.assoc_opt "trace_id" s.T.Span.attrs
      in
      Alcotest.(check (option string)) "with_span stamped" (Some "req-outer")
        (attr_of "a");
      Alcotest.(check (option string)) "nested id wins" (Some "req-inner")
        (attr_of "b");
      Alcotest.(check (option string)) "record stamped, outer restored"
        (Some "req-outer") (attr_of "manual");
      Alcotest.(check (option string)) "no id outside" None
        (attr_of "outside"))

(* --- convergence progress --- *)

let test_progress_collect =
  with_clean (fun () ->
      install_tick_clock ();
      T.Span.clear ();
      Alcotest.(check bool) "no collector at rest" false
        (T.Progress.collecting ());
      (* Emitting without a collector is a silent no-op. *)
      T.Progress.emit ~incumbent:1.0 ~source:"nobody" ();
      let (), outer =
        T.Progress.collect (fun () ->
            Alcotest.(check bool) "collector active" true
              (T.Progress.collecting ());
            T.Progress.emit ~incumbent:250.0 ~source:"h32jump" ();
            let (), inner =
              T.Progress.collect (fun () ->
                  T.Progress.emit ~incumbent:210.0 ~bound:180.0 ~source:"milp"
                    ())
            in
            (* Nested collectors both see the inner event, each with
               its own elapsed origin. *)
            Alcotest.(check int) "inner sees one event" 1 (List.length inner);
            T.Progress.emit ~bound:199.0 ~source:"milp" ())
      in
      (match outer with
      | [ e1; e2; e3 ] ->
        Alcotest.(check string) "sources in emission order" "h32jump,milp,milp"
          (String.concat "," [ e1.T.Progress.source; e2.T.Progress.source;
                               e3.T.Progress.source ]);
        Alcotest.(check (option (float 1e-9))) "incumbent kept" (Some 210.0)
          e2.T.Progress.incumbent;
        Alcotest.(check (option (float 1e-9))) "bound-only event" None
          e3.T.Progress.incumbent;
        Alcotest.(check (option (float 1e-9))) "bound kept" (Some 199.0)
          e3.T.Progress.bound;
        Alcotest.(check bool) "elapsed non-decreasing" true
          (e1.T.Progress.elapsed <= e2.T.Progress.elapsed
          && e2.T.Progress.elapsed <= e3.T.Progress.elapsed)
      | l -> Alcotest.failf "expected 3 events, got %d" (List.length l));
      Alcotest.(check int) "each emission recorded a progress span" 3
        (List.length
           (List.filter
              (fun s -> s.T.Span.name = "solver.progress")
              (T.Span.recent ())));
      (* The kill switch silences emission even under a collector. *)
      T.set_enabled false;
      let (), dark =
        T.Progress.collect (fun () ->
            T.Progress.emit ~incumbent:1.0 ~source:"off" ())
      in
      Alcotest.(check int) "disabled emits nothing" 0 (List.length dark))

(* --- the span JSONL codec --- *)

let span_eq : T.Span.t Alcotest.testable =
  Alcotest.testable
    (fun fmt s -> Format.fprintf fmt "%s#%d" s.T.Span.name s.T.Span.id)
    ( = )

let test_span_json_roundtrip =
  with_clean (fun () ->
      install_tick_clock ();
      T.Span.clear ();
      T.Span.with_span "outer" (fun () ->
          T.Span.with_span ~attrs:[ ("engine", "ilp"); ("target", "70") ]
            "inner" (fun () -> ()));
      let spans = T.Span.recent () in
      List.iter
        (fun s ->
          (* Through the JSON value and through the printed line, as a
             trace file reader would see it. *)
          (match M.span_of_json (M.span_to_json s) with
           | Ok s' -> Alcotest.check span_eq "value round-trip" s s'
           | Error e -> Alcotest.fail e);
          match J.of_string (J.to_string (M.span_to_json s)) with
          | Error e -> Alcotest.fail ("reparse: " ^ e)
          | Ok j -> (
            match M.span_of_json j with
            | Ok s' -> Alcotest.check span_eq "line round-trip" s s'
            | Error e -> Alcotest.fail e))
        spans)

let test_trace_sink =
  with_clean (fun () ->
      T.Span.clear ();
      let path = Filename.temp_file "rentcost_trace" ".jsonl" in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          M.install_trace ~path;
          T.Span.with_span "a" (fun () ->
              T.Span.with_span "b" (fun () -> ()));
          M.close_trace ();
          let ic = open_in path in
          let lines = ref [] in
          (try
             while true do
               lines := input_line ic :: !lines
             done
           with End_of_file -> close_in ic);
          let decoded =
            List.rev_map
              (fun line ->
                match J.of_string line with
                | Error e -> Alcotest.fail ("trace line: " ^ e)
                | Ok j -> (
                  match M.span_of_json j with
                  | Error e -> Alcotest.fail ("trace span: " ^ e)
                  | Ok s -> s))
              !lines
          in
          Alcotest.(check (list string))
            "sink saw both spans in completion order" [ "b"; "a" ]
            (List.map (fun s -> s.T.Span.name) decoded)))

(* --- concurrent registration (regression: Telemetry.all while other
   domains register) --- *)

let test_concurrent_registration () =
  let domains =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 0 to 199 do
              let c =
                T.counter (Printf.sprintf "test.conc.%d.%d" d (i mod 50))
              in
              T.bump c;
              ignore
                (T.histogram
                   (Printf.sprintf "test.conc_hist.%d.%d" d (i mod 10))
                   ~bounds:[| 1.0; 2.0 |])
            done))
  in
  (* Snapshot and render concurrently with the registrations; the laws
     here are "never raises" and "snapshots are sorted". *)
  for _ = 1 to 50 do
    let names = List.map fst (T.all ()) in
    Alcotest.(check bool) "counter snapshot sorted" true
      (List.sort compare names = names);
    ignore (T.histograms ());
    ignore (T.text_exposition ())
  done;
  List.iter Domain.join domains;
  let found = List.filter (fun (n, _) -> String.length n >= 10 && String.sub n 0 10 = "test.conc.") (T.all ()) in
  Alcotest.(check int) "all concurrent counters registered" 200
    (List.length found)

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
      Alcotest.test_case "span survives exceptions" `Quick test_span_exception;
      Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
      Alcotest.test_case "disabled mode allocates nothing" `Quick
        test_disabled_zero_alloc;
      Alcotest.test_case "labelled counter families" `Quick
        test_labelled_counters;
      Alcotest.test_case "labelled histogram families" `Quick
        test_labelled_histograms;
      Alcotest.test_case "labelled find-or-create is domain-safe" `Quick
        test_labelled_concurrent;
      Alcotest.test_case "gauges read at scrape" `Quick test_gauges;
      Alcotest.test_case "golden exposition blocks" `Quick
        test_exposition_golden;
      Alcotest.test_case "histogram le-bucket semantics" `Quick
        test_histogram_basics;
      prop "every observation lands in exactly one bucket" hist_gen bucket_prop;
      Alcotest.test_case "trace ids stamp spans" `Quick test_trace_id;
      Alcotest.test_case "progress collect and emit" `Quick
        test_progress_collect;
      Alcotest.test_case "span json round-trip" `Quick test_span_json_roundtrip;
      Alcotest.test_case "jsonl trace sink round-trip" `Quick test_trace_sink;
      Alcotest.test_case "registration is domain-safe" `Quick
        test_concurrent_registration;
    ] )
