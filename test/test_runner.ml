(* Tests for the experiment runner and statistics aggregation. *)

module G = Cloudsim.Generator
module R = Cloudsim.Runner
module S = Cloudsim.Stats
module E = Cloudsim.Experiments
module H = Rentcost.Heuristics

let tiny_gp = { G.num_graphs = 3; min_tasks = 2; max_tasks = 4; mutation_pct = 0.5 }

let tiny_cp =
  { G.num_types = 3; min_cost = 1; max_cost = 20; min_throughput = 5;
    max_throughput = 20 }

let run_tiny () =
  R.sweep ~seed:11 ~configs:4 tiny_gp tiny_cp ~targets:[ 10; 20 ]
    ~algorithms:(R.paper_algorithms ())
    ~params:H.default_params

let test_sweep_shape () =
  let ms = run_tiny () in
  (* 4 configs x 2 targets x 6 algorithms *)
  Alcotest.(check int) "measurement count" (4 * 2 * 6) (List.length ms);
  List.iter
    (fun m ->
      Alcotest.(check bool) "cost non-negative" true (m.R.cost >= 0);
      Alcotest.(check bool) "time non-negative" true
        (m.R.telemetry.Rentcost.Solver.wall_time >= 0.0))
    ms

let test_sweep_telemetry () =
  (* Rows carry the solving engine's own telemetry: heuristic rows
     count oracle evaluations (H1 does J of them, never 0), ILP rows
     count branch-and-bound nodes — no more hand-rolled stopwatches or
     hard-coded zeros. *)
  let open Rentcost.Solver in
  List.iter
    (fun m ->
      let t = m.R.telemetry in
      if m.R.algorithm = "ILP" then begin
        Alcotest.(check bool) "ILP engine" true (t.engine = Exact_ilp);
        Alcotest.(check bool) "ILP explored nodes" true (t.nodes >= 1);
        Alcotest.(check bool) "ILP pivoted" true (t.pivots >= 1)
      end
      else begin
        Alcotest.(check bool) "heuristic engine" true
          (match t.engine with Heuristic _ -> true | _ -> false);
        Alcotest.(check bool) "heuristic evaluated" true (t.evaluations >= 1);
        Alcotest.(check int) "heuristic has no nodes" 0 t.nodes
      end)
    (run_tiny ())

let test_sweep_deterministic_costs () =
  let costs ms = List.map (fun m -> (m.R.config, m.R.target, m.R.algorithm, m.R.cost)) ms in
  Alcotest.(check bool) "same costs across runs" true
    (costs (run_tiny ()) = costs (run_tiny ()))

let test_ilp_never_worse () =
  (* The ILP is warm-started with H32Jump, so its cost is never worse
     than any heuristic's on the same (config, target). *)
  let ms = run_tiny () in
  let ilp = Hashtbl.create 16 in
  List.iter
    (fun m -> if m.R.algorithm = "ILP" then Hashtbl.replace ilp (m.R.config, m.R.target) m.R.cost)
    ms;
  List.iter
    (fun m ->
      if m.R.algorithm <> "ILP" then
        Alcotest.(check bool)
          (Printf.sprintf "ILP <= %s at (%d, %d)" m.R.algorithm m.R.config m.R.target)
          true
          (Hashtbl.find ilp (m.R.config, m.R.target) <= m.R.cost))
    ms

let test_normalized_cost_series () =
  let ms = run_tiny () in
  let s = S.normalized_cost ms in
  Alcotest.(check (list string)) "column order"
    [ "ILP"; "H1"; "H2"; "H31"; "H32"; "H32Jump" ]
    s.S.algorithms;
  Alcotest.(check int) "one row per target" 2 (List.length s.S.rows);
  List.iter
    (fun (_, values) ->
      Alcotest.(check (float 1e-9)) "ILP normalizes to 1" 1.0 values.(0);
      Array.iter
        (fun v -> Alcotest.(check bool) "ratios in (0, 1]" true (v > 0.0 && v <= 1.0))
        values)
    s.S.rows

let test_best_counts_series () =
  let ms = run_tiny () in
  let s = S.best_counts ms in
  List.iter
    (fun (_, values) ->
      (* ILP is never beaten, so it is best in every configuration. *)
      Alcotest.(check (float 1e-9)) "ILP always best" 4.0 values.(0);
      Array.iter
        (fun v -> Alcotest.(check bool) "counts within configs" true (v >= 0.0 && v <= 4.0))
        values)
    s.S.rows

let test_mean_times_series () =
  let s = S.mean_times (run_tiny ()) in
  List.iter
    (fun (_, values) ->
      Array.iter (fun v -> Alcotest.(check bool) "non-negative" true (v >= 0.0)) values)
    s.S.rows

let test_gap_series () =
  let s = S.mean_gap_vs_reference (run_tiny ()) ~reference:"ILP" in
  List.iter
    (fun (_, values) ->
      Alcotest.(check (float 1e-9)) "ILP gap is zero" 0.0 values.(0);
      Array.iter (fun v -> Alcotest.(check bool) "gaps >= 0" true (v >= 0.0)) values)
    s.S.rows

let test_optimality_rate () =
  let s = S.optimality_rate (run_tiny ()) in
  List.iter
    (fun (_, values) ->
      Array.iter
        (fun v -> Alcotest.(check bool) "rate in [0,1]" true (v >= 0.0 && v <= 1.0))
        values)
    s.S.rows

let test_csv_rendering () =
  let s = S.normalized_cost (run_tiny ()) in
  let csv = Cloudsim.Report.series_to_csv s in
  let lines = String.split_on_char '\n' (String.trim csv) in
  Alcotest.(check int) "header + 2 rows" 3 (List.length lines);
  Alcotest.(check bool) "header" true
    (List.hd lines = "target,ILP,H1,H2,H31,H32,H32Jump")

let test_presets_complete () =
  let ids = List.map (fun p -> p.E.id) E.all in
  Alcotest.(check (list string)) "all figures present"
    [ "fig3"; "fig4"; "fig5"; "fig6"; "fig7"; "fig8" ] ids;
  Alcotest.(check bool) "find works" true (E.find "fig7" <> None);
  Alcotest.(check bool) "find rejects junk" true (E.find "fig9" = None);
  (* Parameters of the paper, spot-checked. *)
  let fig7 = Option.get (E.find "fig7") in
  Alcotest.(check int) "fig7 max tasks" 100 fig7.E.graphs.G.max_tasks;
  Alcotest.(check int) "fig7 max throughput" 50 fig7.E.cloud.G.max_throughput;
  let fig8 = Option.get (E.find "fig8") in
  Alcotest.(check int) "fig8 types" 50 fig8.E.cloud.G.num_types;
  Alcotest.(check (option (float 1e-9))) "fig8 cap" (Some 100.0) fig8.E.ilp_time_limit;
  Alcotest.(check int) "sweep targets" 19 (List.length E.sweep_targets)

let test_table3_experiment () =
  let rows = E.table3 () in
  Alcotest.(check int) "20 targets" 20 (List.length rows);
  let target, entries = List.hd rows in
  Alcotest.(check int) "first target" 10 target;
  Alcotest.(check (list string)) "algorithms"
    [ "ILP"; "H1"; "H2"; "H31"; "H32"; "H32Jump" ]
    (List.map (fun (a, _, _) -> a) entries);
  (* ILP column must equal the published optimal costs. *)
  let expected =
    [ 28; 38; 58; 69; 86; 107; 124; 134; 155; 172; 192; 199; 220; 237; 257;
      268; 285; 306; 323; 333 ]
  in
  List.iter2
    (fun (t, entries) want ->
      match entries with
      | ("ILP", _, cost) :: _ ->
        Alcotest.(check int) (Printf.sprintf "ILP at %d" t) want cost
      | _ -> Alcotest.fail "ILP missing")
    rows expected

let suite =
  ( "runner",
    [ Alcotest.test_case "sweep shape" `Quick test_sweep_shape;
      Alcotest.test_case "sweep telemetry" `Quick test_sweep_telemetry;
      Alcotest.test_case "deterministic costs" `Quick test_sweep_deterministic_costs;
      Alcotest.test_case "ILP never worse" `Quick test_ilp_never_worse;
      Alcotest.test_case "normalized cost series" `Quick test_normalized_cost_series;
      Alcotest.test_case "best counts series" `Quick test_best_counts_series;
      Alcotest.test_case "mean times series" `Quick test_mean_times_series;
      Alcotest.test_case "gap series" `Quick test_gap_series;
      Alcotest.test_case "optimality rate" `Quick test_optimality_rate;
      Alcotest.test_case "csv rendering" `Quick test_csv_rendering;
      Alcotest.test_case "presets complete" `Quick test_presets_complete;
      Alcotest.test_case "table3 experiment" `Slow test_table3_experiment ] )
