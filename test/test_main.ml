(* Aggregated test entry point: one alcotest suite per library module. *)

let () =
  Alcotest.run "rentcost-repro"
    [ Test_bigint.suite;
      Test_pqueue.suite;
      Test_rat.suite;
      Test_numeric.suite;
      Test_prng.suite;
      Test_lp.suite;
      Test_simplex_oracle.suite;
      Test_lp_format.suite;
      Test_bounded.suite;
      Test_milp.suite;
      Test_knapsack.suite;
      Test_model.suite;
      Test_costing.suite;
      Test_instance.suite;
      Test_dp.suite;
      Test_ilp.suite;
      Test_heuristics.suite;
      Test_streamsim.suite;
      Test_generator.suite;
      Test_runner.suite;
      Test_solver.suite;
      Test_integration.suite;
      Test_analysis.suite;
      Test_format.suite;
      Test_service.suite;
      Test_admission.suite;
      Test_autoscale.suite;
      Test_scenario.suite;
      Test_telemetry.suite;
      Test_parallel.suite ]
