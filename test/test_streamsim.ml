(* Tests for the discrete-event stream simulator: the weighted
   round-robin assigner, single-machine sanity cases with exactly
   computable timings, the throughput-validation loop against the
   model's allocations, and failure injection (under-provisioning,
   deadlock guards). *)

module TG = Rentcost.Task_graph
module PF = Rentcost.Platform
module PB = Rentcost.Problem
module AL = Rentcost.Allocation
module A = Streamsim.Assign
module S = Streamsim.Sim

(* --- Assign --- *)

let test_assign_proportions () =
  let a = A.create ~weights:[| 1; 3 |] in
  let picks = List.init 8 (fun _ -> A.next a) in
  Alcotest.(check (array int)) "counts 2/6" [| 2; 6 |] (A.counts a);
  Alcotest.(check int) "total" 8 (A.total a);
  (* smoothness: recipe 1 never lags more than one item behind 3/4 share *)
  let c1 = ref 0 in
  List.iteri
    (fun i j ->
      if j = 1 then incr c1;
      let expected = 3.0 /. 4.0 *. float_of_int (i + 1) in
      Alcotest.(check bool) "smooth" true (Float.abs (float_of_int !c1 -. expected) <= 1.0))
    picks

let test_assign_zero_weight_skipped () =
  let a = A.create ~weights:[| 0; 5; 0 |] in
  for _ = 1 to 10 do
    Alcotest.(check int) "always recipe 1" 1 (A.next a)
  done

(* qcheck properties over random weight vectors: weights 0..9, at
   least one positive (fixed up deterministically when the draw is all
   zeros). *)
let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

let weights_gen =
  QCheck2.Gen.(
    map2
      (fun ws fix ->
        let ws = Array.of_list ws in
        if Array.exists (fun w -> w > 0) ws then ws
        else begin
          ws.(fix mod Array.length ws) <- 1;
          ws
        end)
      (list_size (int_range 1 6) (int_range 0 9))
      (int_range 0 5))

let prop_assign_zero_weights_starve =
  prop "zero-weight recipes never receive items"
    QCheck2.Gen.(pair weights_gen (int_range 1 200))
    (fun (weights, n) ->
      let a = A.create ~weights in
      for _ = 1 to n do
        ignore (A.next a)
      done;
      let counts = A.counts a in
      Array.for_all Fun.id
        (Array.mapi (fun j c -> weights.(j) > 0 || c = 0) counts))

let prop_assign_counts_within_one =
  prop "after any prefix, counts stay within one of n*rho_j/rho"
    QCheck2.Gen.(pair weights_gen (int_range 1 200))
    (fun (weights, n) ->
      let a = A.create ~weights in
      let total = float_of_int (Array.fold_left ( + ) 0 weights) in
      let ok = ref true in
      for i = 1 to n do
        ignore (A.next a);
        Array.iteri
          (fun j c ->
            let share = float_of_int i *. float_of_int weights.(j) /. total in
            if Float.abs (float_of_int c -. share) > 1.0 +. 1e-9 then
              ok := false)
          (A.counts a)
      done;
      !ok && A.total a = n)

let test_assign_validation () =
  Alcotest.check_raises "empty" (Invalid_argument "Assign.create: no weights")
    (fun () -> ignore (A.create ~weights:[||]));
  Alcotest.check_raises "all zero" (Invalid_argument "Assign.create: all weights are zero")
    (fun () -> ignore (A.create ~weights:[| 0; 0 |]));
  Alcotest.check_raises "negative" (Invalid_argument "Assign.create: negative weight")
    (fun () -> ignore (A.create ~weights:[| 1; -1 |]))

(* --- exactly computable single-recipe case --- *)

(* One recipe = one task of type 0; r_0 = 10, one machine: service time
   0.1; N items saturated -> makespan N * 0.1, throughput 10. *)
let tiny_problem =
  PB.create (PF.of_list [ (5, 10) ]) [| TG.create ~ntypes:1 ~types:[| 0 |] ~edges:[] |]

let test_single_machine_timing () =
  let alloc = AL.make tiny_problem ~rho:[| 10 |] ~machines:[| 1 |] in
  let report =
    S.run tiny_problem alloc { S.default_config with S.items = 100 }
  in
  Alcotest.(check int) "all done" 100 report.S.completed;
  Alcotest.(check (float 1e-6)) "makespan 10.0" 10.0 report.S.makespan;
  Alcotest.(check (float 0.2)) "throughput 10" 10.0 report.S.throughput;
  Alcotest.(check (float 1e-6)) "fully utilized" 1.0 report.S.utilization.(0);
  Alcotest.(check int) "in-order, no buffer" 0 report.S.max_reorder

let test_two_machines_double_throughput () =
  let alloc = AL.make tiny_problem ~rho:[| 20 |] ~machines:[| 2 |] in
  let report = S.run tiny_problem alloc { S.default_config with S.items = 200 } in
  Alcotest.(check (float 0.5)) "throughput 20" 20.0 report.S.throughput

let test_chain_latency () =
  (* Two-task chain, types r = (10, 10): latency of a lone item is
     0.1 + 0.1 = 0.2. *)
  let p =
    PB.create (PF.of_list [ (1, 10); (1, 10) ])
      [| TG.chain ~ntypes:2 ~types:[| 0; 1 |] |]
  in
  let alloc = AL.make p ~rho:[| 1 |] ~machines:[| 1; 1 |] in
  let report = S.run p alloc { S.default_config with S.items = 1; warmup_fraction = 0.0 } in
  Alcotest.(check (float 1e-9)) "latency 0.2" 0.2 report.S.mean_latency

let test_parallel_dag_shorter_than_chain () =
  (* Diamond 0 -> {1,2} -> 3 vs chain 0 -> 1 -> 2 -> 3 of the same four
     tasks: with one machine per type and a single item, the diamond's
     middle tasks of distinct types run in parallel. *)
  let ntypes = 4 in
  let diamond =
    TG.create ~ntypes ~types:[| 0; 1; 2; 3 |] ~edges:[ (0, 1); (0, 2); (1, 3); (2, 3) ]
  in
  let chain = TG.chain ~ntypes ~types:[| 0; 1; 2; 3 |] in
  let platform = PF.of_list [ (1, 10); (1, 10); (1, 10); (1, 10) ] in
  let run g =
    let p = PB.create platform [| g |] in
    let alloc = AL.make p ~rho:[| 1 |] ~machines:[| 1; 1; 1; 1 |] in
    (S.run p alloc { S.default_config with S.items = 1; warmup_fraction = 0.0 }).S.makespan
  in
  Alcotest.(check (float 1e-9)) "diamond 0.3" 0.3 (run diamond);
  Alcotest.(check (float 1e-9)) "chain 0.4" 0.4 (run chain)

(* --- validation of the provisioning model --- *)

let test_ilp_allocations_sustain_target () =
  List.iter
    (fun target ->
      let o = Rentcost.Ilp.optimize ~problem:PB.illustrating ~target () in
      let alloc = Option.get o.Rentcost.Ilp.allocation in
      Alcotest.(check bool)
        (Printf.sprintf "sustains %d" target)
        true
        (S.sustains PB.illustrating alloc ~target))
    [ 10; 40; 70; 120; 200 ]

let test_heuristic_allocations_sustain_target () =
  let params = { Rentcost.Heuristics.default_params with step = 10 } in
  List.iter
    (fun target ->
      List.iter
        (fun name ->
          let res =
            Rentcost.Heuristics.search ~params ~rng:(Numeric.Prng.create 3)
              ~problem:PB.illustrating name ~target
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s sustains %d" (Rentcost.Heuristics.name_to_string name)
               target)
            true
            (S.sustains PB.illustrating res.Rentcost.Heuristics.allocation ~target))
        Rentcost.Heuristics.all)
    [ 30; 90 ]

let test_underprovisioned_fails () =
  (* Halving the type-0 fleet of a tight allocation must lose
     throughput under saturation. *)
  let alloc = AL.make tiny_problem ~rho:[| 20 |] ~machines:[| 2 |] in
  ignore alloc;
  let starved = AL.make tiny_problem ~rho:[| 10 |] ~machines:[| 1 |] in
  (* starved provides capacity 10 but we demand 20 *)
  Alcotest.(check bool) "cannot sustain 20" false
    (S.sustains tiny_problem starved ~target:20)

let test_rate_arrival_paces_output () =
  (* Plenty of machines, arrivals at rate 5: output rate ~5, machines
     partly idle. *)
  let alloc = AL.make tiny_problem ~rho:[| 10 |] ~machines:[| 2 |] in
  let report =
    S.run tiny_problem alloc { S.default_config with S.items = 500; arrival = S.Rate 5.0 }
  in
  Alcotest.(check (float 0.2)) "throughput 5" 5.0 report.S.throughput;
  Alcotest.(check bool) "under-utilized" true (report.S.utilization.(0) < 0.5)

let test_reorder_buffer_mixed_recipes () =
  (* Two recipes with very different service times sharing the output:
     in-order delivery needs a buffer > 0 under saturation. *)
  let p =
    PB.create (PF.of_list [ (1, 1); (1, 100) ])
      [| TG.create ~ntypes:2 ~types:[| 0 |] ~edges:[];
         TG.create ~ntypes:2 ~types:[| 1 |] ~edges:[] |]
  in
  let alloc = AL.make p ~rho:[| 1; 1 |] ~machines:[| 1; 1 |] in
  let report = S.run p alloc { S.default_config with S.items = 100 } in
  Alcotest.(check bool) "buffer needed" true (report.S.max_reorder > 0);
  Alcotest.(check int) "all items out" 100 report.S.completed

let test_guards () =
  Alcotest.check_raises "zero items" (Invalid_argument "Sim.run: items must be positive")
    (fun () ->
      let alloc = AL.make tiny_problem ~rho:[| 1 |] ~machines:[| 1 |] in
      ignore (S.run tiny_problem alloc { S.default_config with S.items = 0 }));
  Alcotest.check_raises "no throughput"
    (Invalid_argument "Sim.run: allocation routes no throughput") (fun () ->
      let alloc = AL.make tiny_problem ~rho:[| 0 |] ~machines:[| 0 |] in
      ignore (S.run tiny_problem alloc S.default_config));
  Alcotest.check_raises "bad rate" (Invalid_argument "Sim.run: arrival rate must be positive")
    (fun () ->
      let alloc = AL.make tiny_problem ~rho:[| 1 |] ~machines:[| 1 |] in
      ignore (S.run tiny_problem alloc { S.default_config with S.arrival = S.Rate 0.0 }))

let test_idle_machine_type_is_harmless () =
  (* A valid allocation can rent zero machines of a type no active
     recipe uses; the run must complete and report zero utilization
     for that type. (An *active* recipe with a machine-less type is
     unreachable through the smart constructors: positive throughput
     on a used type forces at least one machine in Allocation.make.) *)
  let p =
    PB.create (PF.of_list [ (1, 5); (1, 5) ])
      [| TG.chain ~ntypes:2 ~types:[| 0; 1 |];
         TG.create ~ntypes:2 ~types:[| 0 |] ~edges:[] |]
  in
  let alloc = AL.make p ~rho:[| 0; 5 |] ~machines:[| 1; 0 |] in
  let report = S.run p alloc { S.default_config with S.items = 50 } in
  Alcotest.(check int) "all done" 50 report.S.completed;
  Alcotest.(check (float 1e-9)) "type 1 idle" 0.0 report.S.utilization.(1)

let test_failure_injection () =
  (* Aggressive failures: the stream still drains (all items complete),
     failures and re-executions are observed, and throughput drops
     versus the reliable run. *)
  let alloc = AL.make tiny_problem ~rho:[| 20 |] ~machines:[| 2 |] in
  let reliable = S.run tiny_problem alloc { S.default_config with S.items = 400 } in
  let flaky =
    S.run tiny_problem alloc
      { S.default_config with
        S.items = 400;
        failures = Some { S.mtbf = 2.0; repair_time = 1.0; seed = 7 } }
  in
  Alcotest.(check int) "all items complete despite failures" 400 flaky.S.completed;
  Alcotest.(check bool) "failures happened" true (flaky.S.failures > 0);
  Alcotest.(check bool) "throughput degrades" true
    (flaky.S.throughput < reliable.S.throughput);
  Alcotest.(check int) "reliable run has no failures" 0 reliable.S.failures;
  Alcotest.(check int) "reliable run has no reexecutions" 0 reliable.S.reexecutions

let test_failure_determinism () =
  let alloc = AL.make tiny_problem ~rho:[| 20 |] ~machines:[| 2 |] in
  let run () =
    S.run tiny_problem alloc
      { S.default_config with
        S.items = 200;
        failures = Some { S.mtbf = 3.0; repair_time = 0.5; seed = 11 } }
  in
  let a = run () and b = run () in
  Alcotest.(check int) "same failures" a.S.failures b.S.failures;
  Alcotest.(check (float 1e-9)) "same makespan" a.S.makespan b.S.makespan

let test_failure_validation () =
  let alloc = AL.make tiny_problem ~rho:[| 10 |] ~machines:[| 1 |] in
  Alcotest.check_raises "bad mtbf" (Invalid_argument "Sim.run: mtbf must be positive")
    (fun () ->
      ignore
        (S.run tiny_problem alloc
           { S.default_config with
             S.failures = Some { S.mtbf = 0.0; repair_time = 1.0; seed = 1 } }));
  Alcotest.check_raises "bad repair"
    (Invalid_argument "Sim.run: repair_time must be non-negative") (fun () ->
      ignore
        (S.run tiny_problem alloc
           { S.default_config with
             S.failures = Some { S.mtbf = 1.0; repair_time = -1.0; seed = 1 } }))

let test_recipe_counts_match_split () =
  let o = Rentcost.Ilp.optimize ~problem:PB.illustrating ~target:70 () in
  let alloc = Option.get o.Rentcost.Ilp.allocation in
  let report = S.run PB.illustrating alloc { S.default_config with S.items = 700 } in
  (* rho = (10, 30, 30) -> 700 items split 100/300/300 *)
  Alcotest.(check (array int)) "split respected" [| 100; 300; 300 |]
    report.S.recipe_counts

let suite =
  ( "streamsim",
    [ Alcotest.test_case "assign proportions" `Quick test_assign_proportions;
      Alcotest.test_case "assign zero weights" `Quick test_assign_zero_weight_skipped;
      Alcotest.test_case "assign validation" `Quick test_assign_validation;
      prop_assign_zero_weights_starve;
      prop_assign_counts_within_one;
      Alcotest.test_case "single machine timing" `Quick test_single_machine_timing;
      Alcotest.test_case "two machines double throughput" `Quick
        test_two_machines_double_throughput;
      Alcotest.test_case "chain latency" `Quick test_chain_latency;
      Alcotest.test_case "parallel DAG beats chain" `Quick
        test_parallel_dag_shorter_than_chain;
      Alcotest.test_case "ILP allocations sustain target" `Slow
        test_ilp_allocations_sustain_target;
      Alcotest.test_case "heuristic allocations sustain target" `Slow
        test_heuristic_allocations_sustain_target;
      Alcotest.test_case "under-provisioning fails" `Quick test_underprovisioned_fails;
      Alcotest.test_case "rate arrival paces output" `Quick test_rate_arrival_paces_output;
      Alcotest.test_case "reorder buffer with mixed recipes" `Quick
        test_reorder_buffer_mixed_recipes;
      Alcotest.test_case "guards" `Quick test_guards;
      Alcotest.test_case "idle machine type is harmless" `Quick
        test_idle_machine_type_is_harmless;
      Alcotest.test_case "failure injection" `Quick test_failure_injection;
      Alcotest.test_case "failure determinism" `Quick test_failure_determinism;
      Alcotest.test_case "failure validation" `Quick test_failure_validation;
      Alcotest.test_case "recipe counts match split" `Quick test_recipe_counts_match_split ]
  )
