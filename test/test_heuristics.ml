(* Tests for the six § VI heuristics: exact H1 reproduction of
   Table III, dominance/feasibility invariants for all heuristics,
   determinism by seed, and the paper's quality ordering on the
   illustrating example. *)

module PB = Rentcost.Problem
module AL = Rentcost.Allocation
module H = Rentcost.Heuristics
module ILP = Rentcost.Ilp
module Prng = Numeric.Prng

let params10 = { H.default_params with step = 10 }

let cost (res : H.result) = res.H.allocation.AL.cost

(* H1 column of Table III, all 20 rows. *)
let table3_h1 =
  [ (10, 28); (20, 38); (30, 58); (40, 69); (50, 104); (60, 114); (70, 138);
    (80, 138); (90, 174); (100, 189); (110, 199); (120, 199); (130, 256);
    (140, 257); (150, 257); (160, 276); (170, 315); (180, 315); (190, 340);
    (200, 340) ]

let test_h1_table3 () =
  List.iter
    (fun (target, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "H1 at rho=%d" target)
        expected
        (cost (H.h1_best_graph PB.illustrating ~target)))
    table3_h1

let test_h1_single_recipe () =
  let p =
    PB.create Rentcost.Platform.table2
      [| Rentcost.Task_graph.chain ~ntypes:4 ~types:[| 0; 1 |] |]
  in
  let res = H.h1_best_graph p ~target:30 in
  Alcotest.(check (array int)) "all throughput on the only recipe" [| 30 |]
    res.H.allocation.AL.rho

let test_all_heuristics_feasible () =
  let rng () = Prng.create 7 in
  List.iter
    (fun name ->
      List.iter
        (fun target ->
          let res = H.search ~params:params10 ~rng:(rng ()) ~problem:PB.illustrating name ~target in
          Alcotest.(check bool)
            (Printf.sprintf "%s feasible at %d" (H.name_to_string name) target)
            true
            (AL.feasible PB.illustrating ~target res.H.allocation);
          Alcotest.(check int)
            (Printf.sprintf "%s split sums to target" (H.name_to_string name))
            target
            (AL.total_rho res.H.allocation))
        [ 0; 10; 70; 155; 200 ])
    H.all

let test_heuristics_never_beat_ilp () =
  let rng () = Prng.create 11 in
  List.iter
    (fun target ->
      let opt =
        match (ILP.optimize ~problem:PB.illustrating ~target ()).ILP.allocation with
        | Some a -> a.AL.cost
        | None -> Alcotest.fail "ilp failed"
      in
      List.iter
        (fun name ->
          let c =
            cost
              (H.search ~params:params10 ~rng:(rng ()) ~problem:PB.illustrating
                 name ~target)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s >= ILP at %d" (H.name_to_string name) target)
            true (c >= opt))
        H.all)
    [ 10; 50; 90; 160 ]

let test_improvers_never_worse_than_h1 () =
  (* H2, H31, H32, H32Jump all start from H1 and only keep improvements
     (H2/H32Jump remember the best visited point). *)
  let rng () = Prng.create 13 in
  List.iter
    (fun target ->
      let h1 = cost (H.h1_best_graph PB.illustrating ~target) in
      List.iter
        (fun name ->
          let c =
            cost
              (H.search ~params:params10 ~rng:(rng ()) ~problem:PB.illustrating
                 name ~target)
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s <= H1 at %d" (H.name_to_string name) target)
            true (c <= h1))
        [ H.H2; H.H31; H.H32; H.H32_jump ])
    [ 10; 50; 70; 130; 200 ]

let test_h32jump_finds_table3_improvements () =
  (* Rows where the paper's H32Jump improves on H1: it must reach the
     published cost or better. *)
  List.iter
    (fun (target, paper_value) ->
      let rng = Prng.create 42 in
      let c = cost (H.h32_jump ~params:params10 ~rng PB.illustrating ~target) in
      Alcotest.(check bool)
        (Printf.sprintf "H32Jump at %d: %d <= %d" target c paper_value)
        true (c <= paper_value))
    [ (50, 86); (60, 107); (70, 124); (90, 155); (100, 172); (130, 224);
      (170, 285); (200, 333) ]

let test_determinism_by_seed () =
  List.iter
    (fun name ->
      let run () =
        H.search ~params:params10 ~rng:(Prng.create 99) ~problem:PB.illustrating
          name ~target:120
      in
      let a = run () and b = run () in
      Alcotest.(check int)
        (Printf.sprintf "%s deterministic" (H.name_to_string name))
        (cost a) (cost b);
      Alcotest.(check (array int)) "same split" a.H.allocation.AL.rho b.H.allocation.AL.rho)
    H.all

let test_h0_uniform_split_properties () =
  let rng = Prng.create 3 in
  for target = 0 to 50 do
    let res = H.h0_random ~rng PB.illustrating ~target in
    Alcotest.(check int) "sums to target" target (AL.total_rho res.H.allocation)
  done

let test_h31_patience_stops () =
  (* With zero patience H31 must return the H1 point untouched. *)
  let params = { params10 with patience = 0 } in
  let rng = Prng.create 5 in
  let h31 = H.h31_stochastic_descent ~params ~rng PB.illustrating ~target:70 in
  let h1 = H.h1_best_graph PB.illustrating ~target:70 in
  Alcotest.(check int) "H31 = H1" (cost h1) (cost h31)

let test_h2_zero_iterations_is_h1 () =
  let params = { params10 with iterations = 0 } in
  let rng = Prng.create 5 in
  Alcotest.(check int) "H2 = H1"
    (cost (H.h1_best_graph PB.illustrating ~target:90))
    (cost (H.h2_random_walk ~params ~rng PB.illustrating ~target:90))

let test_evaluation_counts () =
  (* H1 evaluates exactly J splits; the walkers evaluate J + iterations. *)
  let h1 = H.h1_best_graph PB.illustrating ~target:50 in
  Alcotest.(check int) "H1 evals" 3 h1.H.evaluations;
  let params = { params10 with iterations = 17 } in
  let h2 = H.h2_random_walk ~params ~rng:(Prng.create 1) PB.illustrating ~target:50 in
  Alcotest.(check int) "H2 evals" (3 + 17) h2.H.evaluations

let test_negative_target_rejected () =
  Alcotest.check_raises "negative" (Invalid_argument "Heuristics: negative target")
    (fun () -> ignore (H.h1_best_graph PB.illustrating ~target:(-1)))

let test_bad_params_rejected () =
  let rng = Prng.create 1 in
  Alcotest.check_raises "zero step" (Invalid_argument "Heuristics: step must be positive")
    (fun () ->
      ignore
        (H.h2_random_walk
           ~params:{ H.default_params with step = 0 }
           ~rng PB.illustrating ~target:10));
  Alcotest.check_raises "negative jumps"
    (Invalid_argument "Heuristics: negative iteration parameter") (fun () ->
      ignore
        (H.h32_jump
           ~params:{ H.default_params with jumps = -1 }
           ~rng PB.illustrating ~target:10))

(* qcheck: invariants on random targets and seeds. *)
let prop name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

let gen = QCheck2.Gen.(pair (int_range 0 200) (int_range 0 10000))

let props =
  [ prop "every heuristic returns a feasible exact-sum split" gen
      (fun (target, seed) ->
        List.for_all
          (fun name ->
            let res =
              H.search ~params:params10 ~rng:(Prng.create seed)
                ~problem:PB.illustrating name ~target
            in
            AL.feasible PB.illustrating ~target res.H.allocation
            && AL.total_rho res.H.allocation = target)
          H.all);
    prop "H32 is a local minimum for single-step moves" gen (fun (target, _) ->
        let res = H.h32_steepest ~params:params10 PB.illustrating ~target in
        let rho = res.H.allocation.AL.rho in
        let base = res.H.allocation.AL.cost in
        let ok = ref true in
        Array.iteri
          (fun j1 _ ->
            Array.iteri
              (fun j2 _ ->
                if j1 <> j2 && rho.(j1) > 0 then begin
                  let d = min 10 rho.(j1) in
                  let rho' = Array.copy rho in
                  rho'.(j1) <- rho'.(j1) - d;
                  rho'.(j2) <- rho'.(j2) + d;
                  if (AL.of_rho PB.illustrating ~rho:rho').AL.cost < base then ok := false
                end)
              rho)
          rho;
        !ok) ]

let suite =
  ( "heuristics",
    [ Alcotest.test_case "H1: all 20 Table III rows" `Quick test_h1_table3;
      Alcotest.test_case "H1 single recipe" `Quick test_h1_single_recipe;
      Alcotest.test_case "all heuristics feasible" `Quick test_all_heuristics_feasible;
      Alcotest.test_case "never beat the ILP" `Quick test_heuristics_never_beat_ilp;
      Alcotest.test_case "improvers never worse than H1" `Quick
        test_improvers_never_worse_than_h1;
      Alcotest.test_case "H32Jump reaches Table III improvements" `Quick
        test_h32jump_finds_table3_improvements;
      Alcotest.test_case "determinism by seed" `Quick test_determinism_by_seed;
      Alcotest.test_case "H0 split properties" `Quick test_h0_uniform_split_properties;
      Alcotest.test_case "H31 zero patience" `Quick test_h31_patience_stops;
      Alcotest.test_case "H2 zero iterations" `Quick test_h2_zero_iterations_is_h1;
      Alcotest.test_case "evaluation counts" `Quick test_evaluation_counts;
      Alcotest.test_case "negative target rejected" `Quick test_negative_target_rejected;
      Alcotest.test_case "bad params rejected" `Quick test_bad_params_rejected ]
    @ props )
