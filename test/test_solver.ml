(* Tests for the unified Solver engine: Auto routing on the § V
   structure classes, agreement of every engine with the exhaustive
   oracle, budget-degradation semantics, and telemetry accounting. *)

module S = Rentcost.Solver
module B = Rentcost.Budget
module H = Rentcost.Heuristics

let platform = Rentcost.Platform.of_list [ (10, 10); (18, 20); (25, 30); (33, 40) ]

let chain types = Rentcost.Task_graph.chain ~ntypes:4 ~types

(* § V-A: every recipe a single task, all types distinct. *)
let blackbox_problem =
  Rentcost.Problem.create platform (Array.init 4 (fun q -> chain [| q |]))

(* § V-B: multi-task recipes over pairwise-disjoint type sets. *)
let disjoint_problem =
  Rentcost.Problem.create platform [| chain [| 0; 1 |]; chain [| 2; 3 |] |]

(* § V-C: the paper's illustrating instance (recipes share types). *)
let shared_problem = Rentcost.Problem.illustrating

(* Every test here is a min-cost solve; shorthand over {!S.run}. *)
let solve ?budget ?rng ~spec problem ~target =
  S.run ?budget ?rng ~spec ~problem
    ~objective:(Rentcost.Objective.min_cost ~target) ()

let solve_cost ?budget ~spec problem ~target =
  match (solve ?budget ~spec problem ~target).S.allocation with
  | Some a -> a.Rentcost.Allocation.cost
  | None -> Alcotest.fail "solver returned no allocation"

(* --- Auto dispatch --- *)

let check_route problem expected name =
  let o = solve ~spec:S.Auto problem ~target:20 in
  Alcotest.(check string) name
    (S.spec_to_string expected)
    (S.spec_to_string o.S.telemetry.S.engine);
  Alcotest.(check bool) (name ^ " optimal") true (o.S.status = S.Optimal)

let test_auto_routes_blackbox () =
  check_route blackbox_problem S.Dp_blackbox "blackbox -> knapsack DP"

let test_auto_routes_disjoint () =
  check_route disjoint_problem S.Dp_disjoint "disjoint -> split DP"

let test_auto_routes_shared () =
  check_route shared_problem S.Exact_ilp "shared types -> ILP"

let test_auto_spec_pure () =
  Alcotest.(check bool) "blackbox spec" true
    (S.auto_spec blackbox_problem = S.Dp_blackbox);
  Alcotest.(check bool) "disjoint spec" true
    (S.auto_spec disjoint_problem = S.Dp_disjoint);
  Alcotest.(check bool) "shared spec" true
    (S.auto_spec shared_problem = S.Exact_ilp)

(* --- every exact engine agrees with the exhaustive oracle --- *)

let test_engines_agree () =
  List.iter
    (fun (problem, engines, label) ->
      List.iter
        (fun target ->
          let reference = solve_cost ~spec:S.Exhaustive problem ~target in
          List.iter
            (fun spec ->
              Alcotest.(check int)
                (Printf.sprintf "%s %s at rho=%d" label (S.spec_to_string spec)
                   target)
                reference
                (solve_cost ~spec problem ~target))
            engines)
        [ 0; 1; 7; 15 ])
    [ (blackbox_problem, [ S.Auto; S.Dp_blackbox; S.Dp_disjoint; S.Exact_ilp ],
       "blackbox");
      (disjoint_problem, [ S.Auto; S.Dp_disjoint; S.Exact_ilp ], "disjoint");
      (shared_problem, [ S.Auto; S.Exact_ilp ], "shared") ]

let test_heuristics_bounded_by_optimum () =
  List.iter
    (fun name ->
      let target = 15 in
      let optimal = solve_cost ~spec:S.Exhaustive shared_problem ~target in
      let o =
        solve ~rng:(Numeric.Prng.create 7) ~spec:(S.Heuristic name)
          shared_problem ~target
      in
      Alcotest.(check bool)
        (H.name_to_string name ^ " feasible status")
        true (o.S.status = S.Feasible);
      match o.S.allocation with
      | None -> Alcotest.fail "heuristic returned no allocation"
      | Some a ->
        Alcotest.(check bool)
          (H.name_to_string name ^ " >= optimal")
          true
          (a.Rentcost.Allocation.cost >= optimal
          && Rentcost.Allocation.feasible shared_problem ~target a))
    H.all

(* --- engine preconditions --- *)

let test_forced_dp_raises_on_shared () =
  (* Forcing a structure-specific DP on an unsupported instance is a
     programmer error, not a budget condition: it raises. *)
  Alcotest.(check bool) "dp-disjoint on shared types raises" true
    (match solve ~spec:S.Dp_disjoint shared_problem ~target:10 with
     | _ -> false
     | exception Invalid_argument _ -> true)

let test_negative_target_raises () =
  Alcotest.check_raises "negative target"
    (Invalid_argument "Objective.min_cost: negative target") (fun () ->
      ignore (solve ~spec:S.Auto shared_problem ~target:(-1)))

(* --- budget degradation --- *)

let test_zero_deadline_degrades () =
  (* A deadline of zero is already expired when the ILP starts: the
     solve must still return a feasible incumbent, flagged as
     budget-exhausted, not raise or return nothing. *)
  let target = 70 in
  let o =
    solve ~budget:(B.deadline 0.0) ~spec:S.Auto shared_problem ~target
  in
  Alcotest.(check bool) "status" true (o.S.status = S.Budget_exhausted);
  (match o.S.allocation with
   | None -> Alcotest.fail "no incumbent under expired budget"
   | Some a ->
     Alcotest.(check bool) "incumbent feasible" true
       (Rentcost.Allocation.feasible shared_problem ~target a));
  Alcotest.(check bool) "wall time measured" true (o.S.telemetry.S.wall_time > 0.0);
  Alcotest.(check bool) "fallback evaluated" true (o.S.telemetry.S.evaluations > 0)

let test_node_budget_degrades () =
  (* A zero node cap stops branch and bound before any node: the warm
     start incumbent (H32Jump) is returned as budget-exhausted. *)
  let target = 70 in
  let o =
    solve ~budget:(B.nodes 0) ~spec:S.Exact_ilp shared_problem ~target
  in
  Alcotest.(check bool) "status" true (o.S.status = S.Budget_exhausted);
  (match o.S.allocation with
   | None -> Alcotest.fail "no incumbent under zero node cap"
   | Some a ->
     Alcotest.(check bool) "incumbent feasible" true
       (Rentcost.Allocation.feasible shared_problem ~target a))

let test_eval_budget_on_heuristic () =
  (* H32Jump under a tight evaluation cap stops at a move boundary,
     still returning a feasible incumbent. *)
  let target = 70 in
  let unbounded =
    solve ~rng:(Numeric.Prng.create 3) ~spec:(S.Heuristic H.H32_jump)
      shared_problem ~target
  in
  let capped =
    solve
      ~budget:(B.evals 10)
      ~rng:(Numeric.Prng.create 3)
      ~spec:(S.Heuristic H.H32_jump) shared_problem ~target
  in
  Alcotest.(check bool) "unbounded runs to completion" true
    (unbounded.S.status = S.Feasible);
  Alcotest.(check bool) "capped flags exhaustion" true
    (capped.S.status = S.Budget_exhausted);
  Alcotest.(check bool) "capped spent less" true
    (capped.S.telemetry.S.evaluations < unbounded.S.telemetry.S.evaluations);
  match capped.S.allocation with
  | None -> Alcotest.fail "no incumbent under eval cap"
  | Some a ->
    Alcotest.(check bool) "incumbent feasible" true
      (Rentcost.Allocation.feasible shared_problem ~target a)

(* --- telemetry accounting --- *)

let test_telemetry_ilp () =
  let o = solve ~spec:S.Exact_ilp shared_problem ~target:70 in
  let t = o.S.telemetry in
  Alcotest.(check bool) "optimal" true (o.S.status = S.Optimal);
  Alcotest.(check bool) "nonzero wall time" true (t.S.wall_time > 0.0);
  Alcotest.(check bool) "nonzero nodes" true (t.S.nodes > 0);
  Alcotest.(check bool) "nonzero pivots" true (t.S.pivots > 0);
  (* The default warm start runs H32Jump, so evaluations register
     too. *)
  Alcotest.(check bool) "warm start evaluations" true (t.S.evaluations > 0)

let test_telemetry_heuristic () =
  let o = solve ~spec:(S.Heuristic H.H1) shared_problem ~target:70 in
  let t = o.S.telemetry in
  (* H1 probes each of the 3 recipes exactly once. *)
  Alcotest.(check int) "H1 evaluations" 3 t.S.evaluations;
  Alcotest.(check int) "no nodes" 0 t.S.nodes;
  Alcotest.(check int) "no pivots" 0 t.S.pivots

let test_telemetry_dp () =
  let o = solve ~spec:S.Auto disjoint_problem ~target:25 in
  let t = o.S.telemetry in
  Alcotest.(check bool) "dp engine" true (t.S.engine = S.Dp_disjoint);
  Alcotest.(check int) "no nodes" 0 t.S.nodes;
  Alcotest.(check int) "no evaluations" 0 t.S.evaluations

let test_telemetry_isolated_per_solve () =
  (* Telemetry is a delta around each solve, not a cumulative global:
     two identical solves report identical (deterministic) counts. *)
  let t1 = (solve ~spec:S.Exact_ilp shared_problem ~target:40).S.telemetry in
  let t2 = (solve ~spec:S.Exact_ilp shared_problem ~target:40).S.telemetry in
  Alcotest.(check int) "same nodes" t1.S.nodes t2.S.nodes;
  Alcotest.(check int) "same pivots" t1.S.pivots t2.S.pivots;
  Alcotest.(check int) "same evaluations" t1.S.evaluations t2.S.evaluations

(* --- convergence timelines --- *)

module TP = Telemetry.Progress

let check_timeline ?optimal name (events : TP.event list) =
  Alcotest.(check bool) (name ^ ": timeline non-empty") true (events <> []);
  let rec walk last_elapsed last_inc last_bound = function
    | [] -> ()
    | (e : TP.event) :: rest ->
      Alcotest.(check bool) (name ^ ": elapsed non-decreasing") true
        (e.TP.elapsed >= last_elapsed);
      let last_inc =
        match (last_inc, e.TP.incumbent) with
        | Some prev, Some inc ->
          Alcotest.(check bool) (name ^ ": incumbents non-increasing") true
            (inc <= prev);
          Some inc
        | prev, inc -> if inc = None then prev else inc
      in
      let last_bound =
        match (last_bound, e.TP.bound) with
        | Some prev, Some b ->
          Alcotest.(check bool) (name ^ ": bounds non-decreasing") true
            (b >= prev);
          Some b
        | prev, b -> if b = None then prev else b
      in
      walk e.TP.elapsed last_inc last_bound rest
  in
  walk neg_infinity None None events;
  let final opt = List.fold_left (fun acc e -> match opt e with Some v -> Some v | None -> acc) None events in
  match optimal with
  | None -> ()
  | Some cost ->
    Alcotest.(check (option (float 1e-9)))
      (name ^ ": final incumbent is the optimum")
      (Some (float_of_int cost))
      (final (fun e -> e.TP.incumbent));
    Alcotest.(check (option (float 1e-9)))
      (name ^ ": bound closes the gap")
      (Some (float_of_int cost))
      (final (fun e -> e.TP.bound))

(* The acceptance instance: a Fig. 7-scale MILP solve (the paper's
   illustrating problem routes to the ILP) must leave a timeline with
   non-increasing incumbents and non-decreasing bounds ending at the
   proved optimal cost. *)
let test_convergence_milp () =
  let target = 70 in
  let optimal = solve_cost ~spec:S.Exhaustive shared_problem ~target in
  let o = solve ~spec:S.Exact_ilp shared_problem ~target in
  Alcotest.(check bool) "optimality proved" true (o.S.status = S.Optimal);
  check_timeline ~optimal "milp" o.S.convergence;
  (* The warm start reports first, then branch and bound takes over:
     the proof event carries the milp source. *)
  let sources = List.map (fun (e : TP.event) -> e.TP.source) o.S.convergence in
  Alcotest.(check bool) "proof event present" true
    (List.mem "milp.proved" sources)

let test_convergence_heuristic () =
  let o =
    solve ~rng:(Numeric.Prng.create 7) ~spec:(S.Heuristic Rentcost.Heuristics.H32_jump)
      shared_problem ~target:70
  in
  check_timeline "h32jump" o.S.convergence;
  (* Heuristics prove nothing: incumbent-only events, every one from
     the heuristic itself. *)
  List.iter
    (fun (e : TP.event) ->
      Alcotest.(check (option (float 1e-9))) "no bounds" None e.TP.bound;
      Alcotest.(check string) "source" "h32jump" e.TP.source)
    o.S.convergence

let test_convergence_empty_when_disabled () =
  Fun.protect
    ~finally:(fun () -> Telemetry.set_enabled true)
    (fun () ->
      Telemetry.set_enabled false;
      let o = solve ~spec:S.Exact_ilp shared_problem ~target:70 in
      Alcotest.(check bool) "still optimal" true (o.S.status = S.Optimal);
      Alcotest.(check bool) "no timeline when disabled" true
        (o.S.convergence = []))

(* --- spec parsing --- *)

let test_spec_strings () =
  List.iter
    (fun spec ->
      Alcotest.(check bool)
        (S.spec_to_string spec ^ " round-trips")
        true
        (S.spec_of_string (S.spec_to_string spec) = Some spec))
    [ S.Auto; S.Exact_ilp; S.Dp_blackbox; S.Dp_disjoint; S.Exhaustive;
      S.Heuristic H.H0; S.Heuristic H.H1; S.Heuristic H.H2; S.Heuristic H.H31;
      S.Heuristic H.H32; S.Heuristic H.H32_jump ];
  (* Every CLI spelling, pinned explicitly so a parser change that
     breaks a documented flag cannot hide behind the round-trip. *)
  List.iter
    (fun (cli, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%S parses" cli)
        true
        (S.spec_of_string cli = Some expected))
    [ ("auto", S.Auto);
      ("ilp", S.Exact_ilp);
      ("dp", S.Dp_disjoint);
      ("dp-disjoint", S.Dp_disjoint);
      ("dp-blackbox", S.Dp_blackbox);
      ("exhaustive", S.Exhaustive);
      ("h0", S.Heuristic H.H0);
      ("h1", S.Heuristic H.H1);
      ("h2", S.Heuristic H.H2);
      ("h31", S.Heuristic H.H31);
      ("h32", S.Heuristic H.H32);
      ("h32jump", S.Heuristic H.H32_jump);
      (* Parsing is case-insensitive. *)
      ("AUTO", S.Auto);
      ("ILP", S.Exact_ilp);
      ("Dp-Blackbox", S.Dp_blackbox);
      ("H32Jump", S.Heuristic H.H32_jump) ];
  List.iter
    (fun junk ->
      Alcotest.(check bool)
        (Printf.sprintf "%S rejected" junk)
        true
        (S.spec_of_string junk = None))
    [ "gurobi"; ""; "h3"; "h33"; "dp_blackbox"; "ilp "; "h32-jump" ]

let suite =
  ( "solver",
    [ Alcotest.test_case "auto routes blackbox" `Quick test_auto_routes_blackbox;
      Alcotest.test_case "auto routes disjoint" `Quick test_auto_routes_disjoint;
      Alcotest.test_case "auto routes shared" `Quick test_auto_routes_shared;
      Alcotest.test_case "auto_spec pure" `Quick test_auto_spec_pure;
      Alcotest.test_case "engines agree with oracle" `Quick test_engines_agree;
      Alcotest.test_case "heuristics bounded by optimum" `Quick
        test_heuristics_bounded_by_optimum;
      Alcotest.test_case "forced dp raises on shared" `Quick
        test_forced_dp_raises_on_shared;
      Alcotest.test_case "negative target raises" `Quick test_negative_target_raises;
      Alcotest.test_case "zero deadline degrades" `Quick test_zero_deadline_degrades;
      Alcotest.test_case "node budget degrades" `Quick test_node_budget_degrades;
      Alcotest.test_case "eval budget on heuristic" `Quick
        test_eval_budget_on_heuristic;
      Alcotest.test_case "telemetry ilp" `Quick test_telemetry_ilp;
      Alcotest.test_case "telemetry heuristic" `Quick test_telemetry_heuristic;
      Alcotest.test_case "telemetry dp" `Quick test_telemetry_dp;
      Alcotest.test_case "telemetry isolated per solve" `Quick
        test_telemetry_isolated_per_solve;
      Alcotest.test_case "milp convergence timeline" `Quick
        test_convergence_milp;
      Alcotest.test_case "heuristic convergence timeline" `Quick
        test_convergence_heuristic;
      Alcotest.test_case "convergence empty when disabled" `Quick
        test_convergence_empty_when_disabled;
      Alcotest.test_case "spec strings" `Quick test_spec_strings ] )
