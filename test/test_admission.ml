(* Property battery for the admission queue's shed policies
   (Rentcost_service.Admission): reject-new never evicts an admitted
   job, drop-oldest sheds exactly the head and preserves survivor
   order, tenant-fair never sheds a tenant's only queued request while
   another tenant hogs two or more slots, and — under every policy,
   with deadlines and time advances — the conservation law holds:
   every job ever offered is exactly one of served, shed or still
   queued.

   The properties are checked observationally: a mirror of the queue
   contents is rebuilt purely from what [offer]/[take] return, never
   from the module's internals. *)

module A = Rentcost_service.Admission

type op =
  | Offer of string * float option  (* tenant, time-to-live *)
  | Take
  | Advance of float

let op_gen ~with_deadlines =
  QCheck2.Gen.(
    frequency
      [ ( 6,
          map2
            (fun t ttl -> Offer (t, if with_deadlines then ttl else None))
            (oneofl [ "a"; "b"; "c"; "d" ])
            (oneofl [ None; Some 0.5; Some 2.0 ]) );
        (3, return Take);
        (2, map (fun dt -> Advance (float_of_int dt *. 0.4)) (int_range 0 5))
      ])

let ops_gen ~with_deadlines =
  QCheck2.Gen.(
    pair (int_range 1 6) (list_size (int_range 0 60) (op_gen ~with_deadlines)))

(* Run [ops] against a fresh queue, threading a caller clock and an
   observational mirror (job id, tenant) of the queue contents, and
   calling [check] after every op. Job ids number the offers. *)
let run ~policy ~capacity ~check ops =
  let q = A.create ~policy ~capacity () in
  let mirror = ref [] in
  let now = ref 0.0 in
  let next = ref 0 in
  let ok = ref true in
  let served = ref 0 and offered = ref 0 in
  let remove_ids ids =
    mirror := List.filter (fun (id, _) -> not (List.mem id ids)) !mirror
  in
  List.iter
    (fun op ->
      if !ok then begin
        (match op with
         | Advance dt -> now := !now +. dt
         | Take -> (
           match A.take q ~now:!now with
           | `Empty -> ()
           | `Job id ->
             incr served;
             remove_ids [ id ]
           | `Shed id -> remove_ids [ id ])
         | Offer (tenant, ttl) ->
           let id = !next in
           incr next;
           incr offered;
           let before = !mirror in
           let expires_at = Option.map (fun ttl -> !now +. ttl) ttl in
           let o = A.offer q ?expires_at ~tenant ~now:!now id in
           remove_ids o.A.evicted;
           if o.A.admitted then mirror := !mirror @ [ (id, tenant) ];
           ok := !ok && check ~before ~tenant ~id ~outcome:o);
        (* Conservation after every op: offered = served + shed +
           queued, and the mirror tracks the real occupancy. *)
        ok :=
          !ok
          && !offered = !served + A.shed_count q + A.length q
          && A.length q = List.length !mirror
      end)
    ops;
  !ok

let no_check ~before:_ ~tenant:_ ~id:_ ~outcome:_ = true

let count_tenant tenant q =
  List.length (List.filter (fun (_, t) -> t = tenant) q)

let prop name ~count gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* Reject-new, no deadlines: an admitted job is never evicted — every
   offer outcome has an empty eviction list, and a full queue sheds
   the arrival itself. *)
let prop_reject_new_never_evicts =
  prop "reject-new never evicts an admitted job" ~count:200
    (ops_gen ~with_deadlines:false)
    (fun (capacity, ops) ->
      run ~policy:A.Reject_new ~capacity
        ~check:(fun ~before ~tenant:_ ~id:_ ~outcome ->
          outcome.A.evicted = []
          && outcome.A.admitted = (List.length before < capacity))
        ops)

(* Drop-oldest, no deadlines: the victim is exactly the queue head,
   the arrival always gets a slot, and the survivors keep their
   relative order (the mirror check inside [run] enforces it: evicted
   ids are removed, everything else stays put). *)
let prop_drop_oldest_head_only =
  prop "drop-oldest evicts exactly the head" ~count:200
    (ops_gen ~with_deadlines:false)
    (fun (capacity, ops) ->
      run ~policy:A.Drop_oldest ~capacity
        ~check:(fun ~before ~tenant:_ ~id:_ ~outcome ->
          outcome.A.admitted
          &&
          if List.length before < capacity then outcome.A.evicted = []
          else
            match (before, outcome.A.evicted) with
            | (oldest, _) :: _, [ v ] -> v = oldest
            | _ -> false)
        ops)

(* Served order under drop-oldest is a subsequence of offer order:
   dequeued ids strictly increase. *)
let prop_drop_oldest_survivor_order =
  prop "drop-oldest preserves survivor order" ~count:200
    (ops_gen ~with_deadlines:false)
    (fun (capacity, ops) ->
      let q = A.create ~policy:A.Drop_oldest ~capacity () in
      let next = ref 0 in
      let last_served = ref (-1) in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Advance _ -> ()
          | Offer (tenant, _) ->
            let id = !next in
            incr next;
            ignore (A.offer q ~tenant ~now:0.0 id)
          | Take -> (
            match A.take q ~now:0.0 with
            | `Job id ->
              ok := !ok && id > !last_served;
              last_served := id
            | `Shed _ | `Empty -> ()))
        ops;
      !ok)

(* Tenant-fair, no deadlines: an eviction only ever hits the newest
   entry of a tenant holding at least two slots; when no tenant hogs,
   the arrival is rejected instead — a tenant's only queued request is
   never shed in favour of another. *)
let prop_tenant_fair_protects_singletons =
  prop "tenant-fair never sheds a tenant's only request" ~count:200
    (ops_gen ~with_deadlines:false)
    (fun (capacity, ops) ->
      run ~policy:A.Tenant_fair ~capacity
        ~check:(fun ~before ~tenant:_ ~id:_ ~outcome ->
          if List.length before < capacity then
            outcome.A.admitted && outcome.A.evicted = []
          else
            let hogged =
              List.exists (fun (_, t) -> count_tenant t before >= 2) before
            in
            match outcome.A.evicted with
            | [] -> (not outcome.A.admitted) && not hogged
            | [ v ] -> (
              outcome.A.admitted
              &&
              match List.assoc_opt v before with
              | None -> false
              | Some vt ->
                (* at least two slots held, and v is the newest *)
                count_tenant vt before >= 2
                && List.for_all
                     (fun (id, t) -> t <> vt || id <= v)
                     before)
            | _ -> false)
        ops)

(* The conservation law under every policy, with deadlines and clock
   advances in play: offered = served + shed + queued after every
   single operation ([run] checks it each step). *)
let prop_conservation =
  prop "offered = served + shed + queued under every policy" ~count:300
    QCheck2.Gen.(
      pair (oneofl [ A.Reject_new; A.Drop_oldest; A.Tenant_fair ])
        (ops_gen ~with_deadlines:true))
    (fun (policy, (capacity, ops)) ->
      run ~policy ~capacity ~check:no_check ops)

(* --- unit corners --- *)

let test_take_batch_compatibility () =
  let q = A.create ~capacity:8 () in
  List.iter (fun i -> ignore (A.offer q ~now:0.0 i)) [ 1; 2; 3; 4; 5 ];
  (* leader 1; same-parity mates 3 and 5 join (k = 3); 2 and 4 keep
     their positions *)
  let b =
    A.take_batch q ~now:0.0 ~k:3 ~compatible:(fun a b -> a mod 2 = b mod 2)
  in
  Alcotest.(check (list int)) "leader plus compatible mates" [ 1; 3; 5 ]
    b.A.jobs;
  Alcotest.(check (list int)) "no shed" [] b.A.shed;
  let t1 = A.take q ~now:0.0 in
  let t2 = A.take q ~now:0.0 in
  let t3 = A.take q ~now:0.0 in
  Alcotest.(check bool) "incompatible entries keep their order" true
    ([ t1; t2; t3 ] = [ `Job 2; `Job 4; `Empty ])

let test_take_batch_sheds_expired () =
  let q = A.create ~capacity:8 () in
  ignore (A.offer q ~expires_at:0.5 ~now:0.0 1);
  ignore (A.offer q ~now:0.0 2);
  ignore (A.offer q ~expires_at:0.5 ~now:0.0 3);
  ignore (A.offer q ~now:0.0 4);
  let b = A.take_batch q ~now:10.0 ~k:4 ~compatible:(fun _ _ -> true) in
  Alcotest.(check (list int)) "live jobs batched" [ 2; 4 ] b.A.jobs;
  Alcotest.(check (list int)) "expired jobs shed" [ 1; 3 ] b.A.shed;
  Alcotest.(check int) "sheds counted" 2 (A.shed_count q)

let test_remove_matching () =
  let q = A.create ~capacity:8 () in
  List.iter (fun i -> ignore (A.offer q ~now:0.0 i)) [ 1; 2; 3; 4 ];
  let shed_before = A.shed_count q in
  Alcotest.(check (list int)) "matching removed in order" [ 2; 4 ]
    (A.remove_matching q ~f:(fun i -> i mod 2 = 0));
  Alcotest.(check int) "removal is not a shed" shed_before (A.shed_count q);
  let t1 = A.take q ~now:0.0 in
  let t2 = A.take q ~now:0.0 in
  let t3 = A.take q ~now:0.0 in
  Alcotest.(check bool) "others untouched" true
    ([ t1; t2; t3 ] = [ `Job 1; `Job 3; `Empty ])

let test_batch_k_guard () =
  let q = A.create ~capacity:2 () in
  Alcotest.check_raises "k = 0 rejected"
    (Invalid_argument "Admission.take_batch: k must be positive") (fun () ->
      ignore (A.take_batch q ~now:0.0 ~k:0 ~compatible:(fun _ _ -> true)))

let suite =
  ( "admission",
    [ prop_reject_new_never_evicts;
      prop_drop_oldest_head_only;
      prop_drop_oldest_survivor_order;
      prop_tenant_fair_protects_singletons;
      prop_conservation;
      Alcotest.test_case "take_batch groups compatible jobs" `Quick
        test_take_batch_compatibility;
      Alcotest.test_case "take_batch sheds expired entries" `Quick
        test_take_batch_sheds_expired;
      Alcotest.test_case "remove_matching leaves the rest" `Quick
        test_remove_matching;
      Alcotest.test_case "take_batch guards k" `Quick test_batch_k_guard ] )
