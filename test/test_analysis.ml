(* Tests for the Analysis extension module: cost curves, H1 buckets,
   price sensitivity, plus the exhaustive-deltas descent ablation. *)

module A = Rentcost.Analysis
module AL = Rentcost.Allocation
module H = Rentcost.Heuristics
module PB = Rentcost.Problem

let p = PB.illustrating

let test_cost_curve_monotone () =
  let targets = List.init 21 (fun i -> 10 * i) in
  let check_curve name solver =
    let curve = A.cost_curve solver p ~targets in
    let costs = List.map (fun (_, a) -> a.AL.cost) curve in
    let rec monotone = function
      | a :: (b :: _ as rest) -> a <= b && monotone rest
      | _ -> true
    in
    Alcotest.(check bool) (name ^ " monotone") true (monotone costs)
  in
  check_curve "ILP" (A.ilp_solver ());
  check_curve "H1" A.h1_solver

let test_cost_curve_values () =
  let curve = A.cost_curve (A.ilp_solver ()) p ~targets:[ 10; 70; 200 ] in
  Alcotest.(check (list (pair int int))) "ILP curve matches Table III"
    [ (10, 28); (70, 124); (200, 333) ]
    (List.map (fun (t, a) -> (t, a.AL.cost)) curve)

let test_h1_buckets () =
  let buckets = A.h1_buckets p ~max_target:50 in
  (* Buckets tile [0, 50] without gaps or overlaps. *)
  let rec tiles expected = function
    | [] -> expected = 51
    | (lo, hi, _) :: rest -> lo = expected && hi >= lo && tiles (hi + 1) rest
  in
  Alcotest.(check bool) "tiling" true (tiles 0 buckets);
  (* Costs strictly increase across bucket boundaries by construction. *)
  let costs = List.map (fun (_, _, c) -> c) buckets in
  let rec distinct_adjacent = function
    | a :: (b :: _ as rest) -> a <> b && distinct_adjacent rest
    | _ -> true
  in
  Alcotest.(check bool) "adjacent buckets differ" true (distinct_adjacent costs);
  (* The first bucket is the free one (target 0 costs nothing). *)
  (match buckets with
   | (0, _, 0) :: _ -> ()
   | _ -> Alcotest.fail "first bucket should start at 0 with cost 0");
  (* H1 has idle capacity after renting for target 10 (cost 28 serves
     up to 10 only here; check bucket containing 10 matches H1 cost). *)
  let cost_at t =
    let _, _, c = List.find (fun (lo, hi, _) -> lo <= t && t <= hi) buckets in
    c
  in
  Alcotest.(check int) "bucket cost at 10" 28 (cost_at 10);
  Alcotest.(check int) "bucket cost at 30" 58 (cost_at 30)

let test_price_sensitivity () =
  let baseline, per_type = A.price_sensitivity p ~target:70 ~percent:50 in
  Alcotest.(check int) "baseline" 124 baseline;
  Alcotest.(check int) "one entry per type" 4 (List.length per_type);
  List.iter
    (fun (q, c) ->
      (* Raising any price never lowers the optimum; the optimum can
         rise by at most that type's share of the baseline fleet. *)
      Alcotest.(check bool) (Printf.sprintf "type %d no cheaper" q) true (c >= baseline))
    per_type

let test_price_sensitivity_zero_percent () =
  let baseline, per_type = A.price_sensitivity p ~target:70 ~percent:0 in
  List.iter
    (fun (q, c) ->
      Alcotest.(check int) (Printf.sprintf "type %d unchanged" q) baseline c)
    per_type

let test_price_sensitivity_validation () =
  Alcotest.check_raises "percent too low"
    (Invalid_argument "Analysis.price_sensitivity: percent <= -100") (fun () ->
      ignore (A.price_sensitivity p ~target:10 ~percent:(-150)))

let test_exhaustive_deltas_no_worse () =
  (* The exhaustive-delta descent dominates the single-quantum one
     from the same start point. *)
  let params = { H.default_params with step = 10 } in
  let params_ex = { params with H.exhaustive_deltas = true } in
  List.iter
    (fun target ->
      let quick = (H.h32_steepest ~params p ~target).H.allocation.AL.cost in
      let thorough = (H.h32_steepest ~params:params_ex p ~target).H.allocation.AL.cost in
      Alcotest.(check bool)
        (Printf.sprintf "exhaustive <= quick at %d" target)
        true (thorough <= quick))
    [ 30; 60; 70; 130; 200 ]

let test_exhaustive_deltas_finds_distant_optimum () =
  (* At ρ = 60 the single-δ descent from H1's (0,0,60) is stuck at 114
     but a 40-unit exchange reaches (40,0,20) = 107; the exhaustive
     variant must find it in one descent, no jumps needed. *)
  let params = { H.default_params with step = 10; exhaustive_deltas = true } in
  let res = H.h32_steepest ~params p ~target:60 in
  Alcotest.(check int) "reaches 107" 107 res.H.allocation.AL.cost

(* --- Elastic provisioning --- *)

module E = Rentcost.Elastic

let demand = [| 0; 20; 50; 120; 70; 20 |]

let test_elastic_vs_static () =
  let elastic = E.provision ~spec:Rentcost.Solver.Exact_ilp p ~demand in
  let static = E.static_peak ~spec:Rentcost.Solver.Exact_ilp p ~demand in
  Alcotest.(check int) "plan lengths" (Array.length demand) (Array.length elastic);
  (* Every period of the static plan costs the peak-period price. *)
  Alcotest.(check int) "static bill"
    (Array.length demand * E.peak_cost static)
    (E.total_cost static);
  (* Elastic never exceeds static, and saves here (demand varies). *)
  Alcotest.(check bool) "elastic cheaper" true
    (E.total_cost elastic < E.total_cost static);
  let s = E.savings ~elastic ~static in
  Alcotest.(check bool) "savings in (0,1)" true (s > 0.0 && s < 1.0);
  (* Per-period allocations meet their demand. *)
  Array.iteri
    (fun t a ->
      Alcotest.(check bool)
        (Printf.sprintf "period %d feasible" t)
        true
        (AL.feasible p ~target:demand.(t) a))
    elastic

let test_elastic_accounting () =
  let plan = E.provision ~spec:(Rentcost.Solver.Heuristic H.H1) p ~demand in
  (* machine_hours sums the per-period fleets. *)
  let hours = E.machine_hours plan in
  let expected = Array.make (PB.num_types p) 0 in
  Array.iter
    (fun a ->
      Array.iteri (fun q x -> expected.(q) <- expected.(q) + x) a.AL.machines)
    plan;
  Alcotest.(check (array int)) "machine hours" expected hours;
  (* churn from the empty fleet is at least the first period's size and
     zero for a constant plan. *)
  let static = E.static_peak ~spec:(Rentcost.Solver.Heuristic H.H1) p ~demand in
  let fleet_size =
    Array.fold_left ( + ) 0 static.(0).AL.machines
  in
  Alcotest.(check int) "static churn = one ramp-up" fleet_size (E.churn static);
  Alcotest.(check bool) "elastic churn >= ramp-up" true (E.churn plan >= 0)

let test_elastic_warm_matches_cold () =
  (* Warm-started exact solves stay optimal: per-period costs agree
     with cold solves over rising, falling and repeated demand. *)
  let demand = [| 120; 70; 70; 20; 90; 120 |] in
  let warm = E.provision ~spec:Rentcost.Solver.Exact_ilp ~warm:true p ~demand in
  let cold = E.provision ~spec:Rentcost.Solver.Exact_ilp ~warm:false p ~demand in
  Array.iteri
    (fun t a ->
      Alcotest.(check int)
        (Printf.sprintf "period %d cost" t)
        cold.(t).AL.cost a.AL.cost)
    warm

let test_elastic_negative_demand () =
  Alcotest.check_raises "negative demand"
    (Invalid_argument "Elastic: negative demand") (fun () ->
      ignore (E.provision p ~demand:[| 10; -1 |]))

let test_elastic_empty_trace () =
  let plan = E.provision ~spec:(Rentcost.Solver.Heuristic H.H1) p ~demand:[||] in
  Alcotest.(check int) "empty bill" 0 (E.total_cost plan);
  Alcotest.(check int) "empty churn" 0 (E.churn plan);
  Alcotest.(check (array int)) "empty hours" [||] (E.machine_hours plan);
  Alcotest.(check (float 1e-9)) "zero savings on empty" 0.0
    (E.savings ~elastic:plan ~static:plan)

let suite =
  ( "analysis",
    [ Alcotest.test_case "cost curve monotone" `Slow test_cost_curve_monotone;
      Alcotest.test_case "cost curve values" `Quick test_cost_curve_values;
      Alcotest.test_case "H1 buckets" `Quick test_h1_buckets;
      Alcotest.test_case "price sensitivity" `Slow test_price_sensitivity;
      Alcotest.test_case "price sensitivity at 0%" `Quick
        test_price_sensitivity_zero_percent;
      Alcotest.test_case "price sensitivity validation" `Quick
        test_price_sensitivity_validation;
      Alcotest.test_case "exhaustive deltas no worse" `Quick
        test_exhaustive_deltas_no_worse;
      Alcotest.test_case "exhaustive deltas finds distant optimum" `Quick
        test_exhaustive_deltas_finds_distant_optimum;
      Alcotest.test_case "elastic vs static" `Slow test_elastic_vs_static;
      Alcotest.test_case "elastic accounting" `Quick test_elastic_accounting;
      Alcotest.test_case "elastic warm matches cold" `Slow
        test_elastic_warm_matches_cold;
      Alcotest.test_case "elastic negative demand" `Quick
        test_elastic_negative_demand;
      Alcotest.test_case "elastic empty trace" `Quick test_elastic_empty_trace ] )
