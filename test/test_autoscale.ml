(* Tests for the autoscale subsystem (Rentcost_autoscale): seeded
   trace generators and the replayable text format, streamsim routing
   conservation, the hourly billing ledger, the drift-watching
   controller's deadband decision rule, and the policy comparison
   harness (elastic between static-peak and the clairvoyant oracle). *)

module T = Rentcost_autoscale.Trace
module Bl = Rentcost_autoscale.Billing
module Ct = Rentcost_autoscale.Controller
module Po = Rentcost_autoscale.Policy
module AL = Rentcost.Allocation

let illustrating = Rentcost.Problem.illustrating

let prop ?(count = 100) name gen f =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen f)

(* --- generators: determinism and shape --- *)

(* Diurnal parameters: small enough to stay fast, wide enough to cover
   trough-only, flat and noisy traces. *)
let diurnal_gen =
  QCheck2.Gen.(
    map
      (fun (ticks, base, amplitude, (period, noise20, seed)) ->
        (ticks, base, amplitude, period, float_of_int noise20 /. 20., seed))
      (tup4 (int_range 0 60) (int_range 0 50) (int_range 0 50)
         (tup3 (int_range 1 24) (int_range 0 10) (int_range 0 10_000))))

let prop_diurnal_deterministic =
  prop "equal params and seed give bit-equal diurnal traces" diurnal_gen
    (fun (ticks, base, amplitude, period, noise, seed) ->
      let gen () =
        T.diurnal ~ticks ~base ~amplitude ~period ~noise ~seed ()
      in
      (gen ()).T.demand = (gen ()).T.demand)

let prop_diurnal_bounded_without_noise =
  prop "noiseless diurnal stays within [base, base + amplitude]"
    diurnal_gen (fun (ticks, base, amplitude, period, _, seed) ->
      let t = T.diurnal ~ticks ~base ~amplitude ~period ~seed () in
      Array.for_all (fun d -> base <= d && d <= base + amplitude) t.T.demand)

(* --- text format --- *)

let demand_gen =
  QCheck2.Gen.(
    map Array.of_list (list_size (int_range 0 40) (int_range 0 1000)))

let trace_gen =
  QCheck2.Gen.(
    map
      (fun (demand, ts_tenths) ->
        T.create ~tick_seconds:(float_of_int ts_tenths /. 10.) ~demand)
      (pair demand_gen (int_range 1 6000)))

let prop_text_roundtrip =
  prop "of_string (to_string t) = t" trace_gen (fun t ->
      let t' = T.of_string (T.to_string t) in
      t'.T.tick_seconds = t.T.tick_seconds && t'.T.demand = t.T.demand)

let test_text_rejects_malformed () =
  let rejects s =
    match T.of_string s with
    | exception Failure _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "empty input" true (rejects "");
  Alcotest.(check bool) "unknown version" true
    (rejects "trace version 2\ntick-seconds 60\ndemand 1 2\n");
  Alcotest.(check bool) "missing demand" true
    (rejects "trace version 1\ntick-seconds 60\n");
  Alcotest.(check bool) "negative demand" true
    (rejects "trace version 1\ntick-seconds 60\ndemand 1 -2\n");
  Alcotest.(check bool) "bad tick-seconds" true
    (rejects "trace version 1\ntick-seconds nope\ndemand 1\n");
  Alcotest.(check bool) "unknown key" true
    (rejects "trace version 1\ntick-seconds 60\nload 1 2\n")

let test_text_comments_ignored () =
  let t =
    T.of_string
      "# a comment\ntrace version 1\n\ntick-seconds 60\n# more\ndemand 3 1 4\n"
  in
  Alcotest.(check (array int)) "demand parsed" [| 3; 1; 4 |] t.T.demand

(* --- streamsim routing: conservation --- *)

let weights_gen =
  QCheck2.Gen.(
    map2
      (fun ws fix ->
        let ws = Array.of_list ws in
        if Array.exists (fun w -> w > 0) ws then ws
        else begin
          ws.(fix mod Array.length ws) <- 1;
          ws
        end)
      (list_size (int_range 1 6) (int_range 0 9))
      (int_range 0 5))

let prop_route_conserves_items =
  prop "routed counts sum to the trace's total demand"
    QCheck2.Gen.(pair trace_gen weights_gen)
    (fun (t, weights) ->
      Array.fold_left ( + ) 0 (T.route t ~weights) = T.total_demand t)

(* --- billing: the hourly ledger --- *)

let test_billing_hourly_cycle () =
  let b = Bl.create ~num_types:2 ~ticks_per_hour:4 in
  let costs = [| 5; 8 |] in
  (* Renting pays each machine's rate once, through tick 4. *)
  let e0 = Bl.step b ~tick:0 ~desired:[| 2; 1 |] ~costs in
  Alcotest.(check (array int)) "fresh rentals" [| 2; 1 |] e0.Bl.rented;
  Alcotest.(check int) "charged the hourly rates" 18 e0.Bl.charged;
  Alcotest.(check (array int)) "held = desired" [| 2; 1 |] (Bl.held b);
  (* Mid-hour downscale: paid machines idle for free, nothing released
     before its horizon, nothing charged. *)
  let e1 = Bl.step b ~tick:1 ~desired:[| 1; 0 |] ~costs in
  Alcotest.(check int) "idle-keep is free" 0 e1.Bl.charged;
  Alcotest.(check (array int)) "nothing released mid-hour" [| 0; 0 |]
    e1.Bl.released;
  Alcotest.(check (array int)) "still held through the hour" [| 2; 1 |]
    (Bl.held b);
  (* At the boundary every expired machine still wanted is renewed —
     charged again, never released-and-re-rented. *)
  let e4 = Bl.step b ~tick:4 ~desired:[| 2; 1 |] ~costs in
  Alcotest.(check (array int)) "renewed at the boundary" [| 2; 1 |]
    e4.Bl.renewed;
  Alcotest.(check (array int)) "no fresh rentals needed" [| 0; 0 |] e4.Bl.rented;
  Alcotest.(check int) "renewals pay the same rates" 18 e4.Bl.charged;
  (* Releasing at the next boundary forfeits nothing and costs
     nothing. *)
  let e8 = Bl.step b ~tick:8 ~desired:[| 0; 0 |] ~costs in
  Alcotest.(check (array int)) "released at expiry" [| 2; 1 |] e8.Bl.released;
  Alcotest.(check int) "release is free" 0 e8.Bl.charged;
  Alcotest.(check (array int)) "ledger empty" [| 0; 0 |] (Bl.held b);
  Alcotest.(check int) "total = two paid hours" 36 (Bl.total_charged b)

let test_billing_validates () =
  let b = Bl.create ~num_types:1 ~ticks_per_hour:4 in
  ignore (Bl.step b ~tick:5 ~desired:[| 1 |] ~costs:[| 3 |]);
  Alcotest.check_raises "decreasing tick"
    (Invalid_argument "Billing.step: tick went backwards") (fun () ->
      ignore (Bl.step b ~tick:4 ~desired:[| 1 |] ~costs:[| 3 |]))

(* --- controller: the deadband decision rule --- *)

let controller_config =
  { Ct.default_config with Ct.ticks_per_hour = 4; deadband = 0.25 }

let check_covers c ~demand (p : Ct.plan) =
  (match Ct.allocation c with
   | Some a ->
     Alcotest.(check bool)
       (Printf.sprintf "fleet covers demand %d after tick %d" demand p.Ct.tick)
       true
       (AL.total_rho a >= demand)
   | None -> Alcotest.fail "controller lost its allocation");
  p

let test_controller_decision_rule () =
  let c = Ct.create ~config:controller_config illustrating in
  (* First observation: empty fleet, so the SLO is already violated
     and the controller must rent. *)
  let p0 = check_covers c ~demand:50 (Ct.tick c ~demand:50) in
  Alcotest.(check string) "first tick reconfigures" "reconfigure"
    (Ct.action_to_string p0.Ct.action);
  Alcotest.(check bool) "first tick is a violation" true p0.Ct.violation;
  Alcotest.(check bool) "first tick rents machines" true
    (Array.fold_left ( + ) 0 p0.Ct.rent > 0);
  Alcotest.(check bool) "first tick is charged" true (p0.Ct.charged > 0);
  (* Demand inside the deadband (45 >= 0.75 * 50): hold, free. *)
  let p1 = check_covers c ~demand:45 (Ct.tick c ~demand:45) in
  Alcotest.(check string) "inside the deadband holds" "hold"
    (Ct.action_to_string p1.Ct.action);
  Alcotest.(check bool) "hold is not a violation" false p1.Ct.violation;
  Alcotest.(check int) "mid-hour hold charges nothing" 0 p1.Ct.charged;
  (* Demand below the deadband floor (30 < 37.5): downscale re-solve,
     no violation. *)
  let p2 = check_covers c ~demand:30 (Ct.tick c ~demand:30) in
  Alcotest.(check string) "drift below the deadband reconfigures"
    "reconfigure"
    (Ct.action_to_string p2.Ct.action);
  Alcotest.(check bool) "downscale is not a violation" false p2.Ct.violation;
  (* Demand above the fleet: reactive upscale, counted as a
     violation. *)
  let p3 = check_covers c ~demand:100 (Ct.tick c ~demand:100) in
  Alcotest.(check string) "overload reconfigures" "reconfigure"
    (Ct.action_to_string p3.Ct.action);
  Alcotest.(check bool) "overload is a violation" true p3.Ct.violation;
  Alcotest.(check int) "four ticks" 4 (Ct.ticks c);
  Alcotest.(check int) "three replans" 3 (Ct.replans c);
  Alcotest.(check int) "one hold" 1 (Ct.holds c);
  Alcotest.(check int) "two violations" 2 (Ct.violations c)

let test_controller_validates () =
  Alcotest.check_raises "deadband out of range"
    (Invalid_argument "Controller: deadband must lie in [0, 1)")
    (fun () ->
      ignore
        (Ct.create
           ~config:{ Ct.default_config with Ct.deadband = 1.5 }
           illustrating));
  let c = Ct.create illustrating in
  Alcotest.check_raises "negative demand"
    (Invalid_argument "Controller.tick: negative demand") (fun () ->
      ignore (Ct.tick c ~demand:(-1)))

(* --- policy comparison --- *)

(* The pinned bench scenario (deep diurnal swing, headroom over the
   noise band) on a fresh seed from the validated sweep: the elastic
   policy must land between the static-peak fleet and the clairvoyant
   per-hour oracle. *)
let policy_config =
  { Ct.default_config with
    Ct.ticks_per_hour = 12;
    deadband = 0.25;
    headroom = 0.15 }

let policy_trace =
  lazy
    (T.diurnal ~ticks:96 ~base:20 ~amplitude:60 ~period:48 ~noise:0.08 ~seed:5
       ())

let test_policy_ordering () =
  let c =
    Po.compare_policies ~config:policy_config illustrating
      (Lazy.force policy_trace)
  in
  Alcotest.(check bool)
    (Printf.sprintf "elastic (%d) <= static-peak (%d)"
       c.Po.elastic.Po.total_cost c.Po.static_peak.Po.total_cost)
    true
    (c.Po.elastic.Po.total_cost <= c.Po.static_peak.Po.total_cost);
  Alcotest.(check bool)
    (Printf.sprintf "oracle (%d) <= elastic (%d)" c.Po.oracle.Po.total_cost
       c.Po.elastic.Po.total_cost)
    true
    (c.Po.oracle.Po.total_cost <= c.Po.elastic.Po.total_cost);
  Alcotest.(check int) "static-peak never violates" 0
    c.Po.static_peak.Po.violations;
  Alcotest.(check int) "static-peak solves once" 1 c.Po.static_peak.Po.replans;
  Alcotest.(check int) "oracle re-plans once per hour block" 8
    c.Po.oracle.Po.replans;
  Alcotest.(check bool) "elastic re-plans less often than every tick" true
    (c.Po.elastic.Po.replans < T.length (Lazy.force policy_trace))

let test_elastic_outcome_consistent () =
  let outcome, plans =
    Po.elastic ~config:policy_config illustrating (Lazy.force policy_trace)
  in
  Alcotest.(check int) "one plan per tick"
    (T.length (Lazy.force policy_trace))
    (List.length plans);
  Alcotest.(check int) "total cost = sum of per-tick charges"
    outcome.Po.total_cost
    (List.fold_left (fun acc (p : Ct.plan) -> acc + p.Ct.charged) 0 plans);
  Alcotest.(check int) "replans = reconfigure plans" outcome.Po.replans
    (List.length
       (List.filter (fun (p : Ct.plan) -> p.Ct.action = Ct.Reconfigure) plans));
  Alcotest.(check int) "violations = violating plans" outcome.Po.violations
    (List.length (List.filter (fun (p : Ct.plan) -> p.Ct.violation) plans))

let suite =
  ( "autoscale",
    [ prop_diurnal_deterministic;
      prop_diurnal_bounded_without_noise;
      prop_text_roundtrip;
      prop_route_conserves_items;
      Alcotest.test_case "text format rejects malformed input" `Quick
        test_text_rejects_malformed;
      Alcotest.test_case "text format ignores comments" `Quick
        test_text_comments_ignored;
      Alcotest.test_case "billing hourly cycle" `Quick test_billing_hourly_cycle;
      Alcotest.test_case "billing validates ticks" `Quick test_billing_validates;
      Alcotest.test_case "controller decision rule" `Quick
        test_controller_decision_rule;
      Alcotest.test_case "controller validates inputs" `Quick
        test_controller_validates;
      Alcotest.test_case "policy ordering on the diurnal trace" `Quick
        test_policy_ordering;
      Alcotest.test_case "elastic outcome is self-consistent" `Quick
        test_elastic_outcome_consistent ] )
