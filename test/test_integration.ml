(* End-to-end integration tests: generate → solve with every method →
   cross-check optima → execute the winning allocation on the
   discrete-event simulator. These tie all seven libraries together. *)

module G = Cloudsim.Generator
module PB = Rentcost.Problem
module AL = Rentcost.Allocation
module H = Rentcost.Heuristics
module P = Numeric.Prng

(* Small shared-type instances where the exhaustive oracle is viable. *)
let small_instance seed =
  let rng = P.create seed in
  G.problem ~rng
    { G.num_graphs = 3; min_tasks = 2; max_tasks = 3; mutation_pct = 0.5 }
    { G.num_types = 3; min_cost = 2; max_cost = 30; min_throughput = 5;
      max_throughput = 25 }

let test_full_stack_agreement () =
  List.iter
    (fun seed ->
      let p = small_instance seed in
      let target = 15 in
      let opt = (Rentcost.Exhaustive.run ~problem:p ~target ()).AL.cost in
      (* ILP finds the same optimum. *)
      let ilp =
        Option.get (Rentcost.Ilp.optimize ~problem:p ~target ()).Rentcost.Ilp.allocation
      in
      Alcotest.(check int) (Printf.sprintf "ILP=brute seed %d" seed) opt ilp.AL.cost;
      (* Heuristics are feasible and no better than the optimum. *)
      List.iter
        (fun name ->
          let res = H.search ~rng:(P.create 1) ~problem:p name ~target in
          Alcotest.(check bool)
            (Printf.sprintf "%s feasible" (H.name_to_string name))
            true
            (AL.feasible p ~target res.H.allocation);
          Alcotest.(check bool)
            (Printf.sprintf "%s >= opt" (H.name_to_string name))
            true
            (res.H.allocation.AL.cost >= opt))
        H.all;
      (* The optimal allocation really sustains the target. *)
      Alcotest.(check bool)
        (Printf.sprintf "simulation sustains seed %d" seed)
        true
        (Streamsim.Sim.sustains p ilp ~target))
    [ 1; 2; 3; 4; 5 ]

let test_gomory_preserves_optimum () =
  (* Cuts must never cut off the integer optimum: solving with root
     cuts yields the same value as without. *)
  List.iter
    (fun seed ->
      let p = small_instance seed in
      let target = 12 in
      let plain =
        Option.get (Rentcost.Ilp.optimize ~problem:p ~target ()).Rentcost.Ilp.allocation
      in
      let cuts =
        Option.get
          (Rentcost.Ilp.optimize ~cut_rounds:3 ~problem:p ~target ()).Rentcost.Ilp.allocation
      in
      Alcotest.(check int) (Printf.sprintf "seed %d" seed) plain.AL.cost cuts.AL.cost)
    [ 1; 2; 3; 4; 5; 6; 7; 8 ]

let test_gomory_tightens_root_bound () =
  (* Root cuts can only raise (never lower) the LP relaxation bound of
     a minimization, and never past the integer optimum. *)
  List.iter
    (fun target ->
      let model, integer =
    Rentcost.Ilp.model ~problem:Rentcost.Problem.illustrating ~target ()
  in
      let bound m =
        match Lp.Simplex.solve m with
        | Lp.Simplex.Optimal { objective; _ } -> objective
        | _ -> Alcotest.fail "relaxation must be solvable"
      in
      let plain = bound model in
      let cut_model, ncuts = Lp.Gomory.strengthen ~rounds:3 model ~integer in
      let strengthened = bound cut_model in
      Alcotest.(check bool)
        (Printf.sprintf "bound raised at %d (%d cuts)" target ncuts)
        true
        (Numeric.Rat.compare strengthened plain >= 0);
      let opt =
        (Option.get (Rentcost.Ilp.optimize ~problem:Rentcost.Problem.illustrating ~target ())
           .Rentcost.Ilp.allocation).AL.cost
      in
      Alcotest.(check bool)
        (Printf.sprintf "bound below optimum at %d" target)
        true
        (Numeric.Rat.compare strengthened (Numeric.Rat.of_int opt) <= 0))
    [ 50; 70; 90 ]

let test_dp_vs_ilp_on_disjoint_generated () =
  (* Force disjointness by giving each recipe its own band of types. *)
  let rng = P.create 9 in
  for _ = 1 to 5 do
    let platform =
      G.platform ~rng
        { G.num_types = 4; min_cost = 2; max_cost = 30; min_throughput = 5;
          max_throughput = 25 }
    in
    let types1 = Array.init (P.int_in_range rng ~lo:1 ~hi:3) (fun _ -> P.int rng 2) in
    let types2 =
      Array.init (P.int_in_range rng ~lo:1 ~hi:3) (fun _ -> 2 + P.int rng 2)
    in
    let p =
      PB.create platform
        [| G.random_dag ~rng ~ntypes:4 ~types:types1;
           G.random_dag ~rng ~ntypes:4 ~types:types2 |]
    in
    let target = 20 in
    let dp = (Rentcost.Dp_disjoint.run ~problem:p ~target ()).AL.cost in
    let ilp =
      (Option.get (Rentcost.Ilp.optimize ~problem:p ~target ()).Rentcost.Ilp.allocation)
        .AL.cost
    in
    Alcotest.(check int) "DP = ILP" ilp dp
  done

let test_warm_start_ablation_equal_cost () =
  (* With and without the H32Jump warm start, the proved optimum is
     identical (only the node count changes). *)
  List.iter
    (fun target ->
      let w = Rentcost.Ilp.optimize ~problem:Rentcost.Problem.illustrating ~target () in
      let c =
        Rentcost.Ilp.optimize ~warm_start:false
          ~problem:Rentcost.Problem.illustrating ~target ()
      in
      Alcotest.(check int)
        (Printf.sprintf "target %d" target)
        (Option.get c.Rentcost.Ilp.allocation).AL.cost
        (Option.get w.Rentcost.Ilp.allocation).AL.cost)
    [ 40; 70; 110; 160 ]

let test_node_limited_ilp_still_good () =
  (* A 1-node budget returns the warm incumbent: feasible, and no
     worse than H32Jump run standalone with the same internal seed. *)
  let p = small_instance 2 in
  let target = 25 in
  let o = Rentcost.Ilp.optimize ~node_limit:1 ~problem:p ~target () in
  match o.Rentcost.Ilp.allocation with
  | None -> Alcotest.fail "warm start should provide an incumbent"
  | Some a ->
    Alcotest.(check bool) "feasible" true (AL.feasible p ~target a);
    let hj = H.h32_jump ~rng:(P.create 0x5EED) p ~target in
    Alcotest.(check bool) "no worse than its own warm start" true
      (a.AL.cost <= hj.H.allocation.AL.cost)

let suite =
  ( "integration",
    [ Alcotest.test_case "full stack agreement" `Slow test_full_stack_agreement;
      Alcotest.test_case "gomory preserves optimum" `Slow test_gomory_preserves_optimum;
      Alcotest.test_case "gomory tightens root bound" `Slow test_gomory_tightens_root_bound;
      Alcotest.test_case "DP vs ILP on generated disjoint" `Slow
        test_dp_vs_ilp_on_disjoint_generated;
      Alcotest.test_case "warm start ablation" `Quick test_warm_start_ablation_equal_cost;
      Alcotest.test_case "node-limited ILP still good" `Quick
        test_node_limited_ilp_still_good ] )
